"""The session wire protocol: JSON messages over one WebSocket.

One WebSocket connection maps to one server-side
:class:`~repro.session.Session`.  Both directions carry JSON text
frames.  The full grammar is documented in ``docs/server.md``; this
module pins the constants and the request/response envelope so server
and client cannot drift.

Client → server (every request carries a client-chosen ``id``)::

    {"id": 1, "op": "execute",     "sql": "...", "params": {...}}
    {"id": 2, "op": "executemany", "sql": "...", "paramseq": [{...}, ...]}
    {"id": 3, "op": "begin" | "commit" | "rollback" | "ping" | "close"}

Requests may additionally carry ``"traceparent"`` (a W3C
``00-<trace_id>-<span_id>-01`` header the server adopts as the request's
distributed-trace context) and ``"retry": n`` (set by the client when a
reconnect policy re-sends a statement, surfaced as a ``retry`` tag on
the server's request span).  Both are optional and ignorable.

Server → client::

    {"type": "hello", "version": 1, "db": "...", "session": n}
    {"id": 1, "type": "rows", "rows": [...], "conditions": {...}|null}
    {"id": 1, "type": "done", "ok": true,  "kind": "resultset" | "count"
                | "none", "rowcount": n, "result": {envelope w/o rows},
                "in_transaction": bool, "trace_id": "...",
                "server_timing": {"total": seconds}}
    {"id": 1, "type": "done", "ok": false, "error": {"code": "PIP-...",
                "message": "..."}, "in_transaction": bool}

``trace_id`` and ``server_timing`` appear on successful ``done`` frames
when the server resolved a trace context for the request.

``rows`` frames stream *before* the ``done`` frame, so a large result
never exists on the server as one message.  Errors always arrive as a
``done`` frame — after an error there are no further frames for that id.
"""

import json

from repro.util.errors import error_code, error_from_code

#: Session protocol version, sent in the hello frame.  Matches the
#: :data:`repro.engine.wire.WIRE_VERSION` envelope major on purpose:
#: results travel inside protocol messages.
PROTOCOL_VERSION = 1

#: Operations a client may request.
OPS = ("execute", "executemany", "begin", "commit", "rollback", "ping", "close")

#: Shard-plane operations (see ``repro.shard``).  Their payload fields
#: are base64-wrapped pickles (``repro.shard.rpc``), so a server only
#: honours them when started with ``shard_ops=True`` — i.e. the loopback
#: worker processes a shard coordinator forks for itself.  A public
#: server rejects them like any unknown op; untrusted peers never reach
#: a pickle load.
SHARD_OPS = ("shard_jobs", "shard_apply", "shard_info", "shard_shutdown")


def dumps(message):
    """Compact JSON for the wire (no spaces, stable float repr)."""
    return json.dumps(message, separators=(",", ":"))


def loads(text):
    return json.loads(text)


def error_entry(exc):
    """The ``error`` object for a ``done`` frame."""
    return {"code": error_code(exc), "message": str(exc)}


def raise_wire_error(entry):
    """Client side: re-raise a ``done`` frame's error as the exception
    class a local database would have raised."""
    raise error_from_code(entry.get("code", "PIP-ERROR"),
                          entry.get("message", "remote error"))


def hello(db_name, session_id):
    return {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "db": db_name,
        "session": session_id,
    }


def done_ok(request_id, kind, rowcount, result=None, in_transaction=False,
            trace_id=None, server_timing=None):
    message = {
        "id": request_id,
        "type": "done",
        "ok": True,
        "kind": kind,
        "rowcount": rowcount,
        "in_transaction": in_transaction,
    }
    if result is not None:
        message["result"] = result
    if trace_id is not None:
        message["trace_id"] = trace_id
    if server_timing is not None:
        message["server_timing"] = server_timing
    return message


def done_error(request_id, exc, in_transaction=False):
    return {
        "id": request_id,
        "type": "done",
        "ok": False,
        "error": error_entry(exc),
        "in_transaction": in_transaction,
    }


def rows_frame(request_id, rows, conditions=None):
    return {
        "id": request_id,
        "type": "rows",
        "rows": rows,
        "conditions": conditions,
    }
