"""``python -m repro.server`` — serve PIP databases over the wire.

Examples
--------
Serve one durable database (created if missing) with token auth::

    python -m repro.server --db ./mydb --auth-token s3cret --port 8470

Serve several databases multi-tenant, two tenants sharing caps::

    python -m repro.server --db sales=./sales --db ops=./ops \\
        --auth-token alice:tokenA --auth-token bob:tokenB

An in-memory scratch database, auth disabled (loopback development)::

    python -m repro.server --memory scratch --seed 7
"""

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.core.database import PIPDatabase
from repro.server.app import PIPServer


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve PIP databases over HTTP/JSON + WebSocket.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="listen address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8470,
                        help="listen port (default 8470; 0 picks a free one)")
    parser.add_argument("--db", action="append", default=[], metavar="[NAME=]PATH",
                        help="durable database directory to open/create; "
                             "repeatable; NAME defaults to 'default' for the "
                             "first and the directory basename after that")
    parser.add_argument("--memory", action="append", default=[], metavar="NAME",
                        help="host an in-memory database under NAME; repeatable")
    parser.add_argument("--seed", type=int, default=None,
                        help="sampling seed for newly created databases "
                             "(existing --db directories keep their recorded "
                             "seed; default 0 for new ones)")
    parser.add_argument("--auth-token", action="append", default=[],
                        metavar="[TENANT:]TOKEN",
                        help="accept TOKEN (repeatable); TENANT groups tokens "
                             "under one concurrency cap. No --auth-token "
                             "disables auth (loopback development only)")
    parser.add_argument("--max-concurrent", type=int, default=8,
                        help="statements executing at once (default 8)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="bounded request queue depth (default 64)")
    parser.add_argument("--per-tenant", type=int, default=4,
                        help="per-tenant concurrency cap (default 4)")
    parser.add_argument("--chunk-rows", type=int, default=512,
                        help="rows per streamed result frame (default 512)")
    parser.add_argument("--drain-seconds", type=float, default=5.0,
                        help="shutdown drain bound (default 5s)")
    return parser


def open_databases(args):
    dbs = {}
    for index, spec in enumerate(args.db):
        name, sep, path = spec.partition("=")
        if not sep:
            path = spec
            name = "default" if index == 0 and not args.memory else None
        if not name:
            name = path.rstrip("/").rsplit("/", 1)[-1]
        dbs[name] = PIPDatabase.open(path, seed=args.seed)
    memory_seed = 0 if args.seed is None else args.seed
    for name in args.memory:
        dbs[name] = PIPDatabase(seed=memory_seed)
    if not dbs:
        dbs["default"] = PIPDatabase(seed=memory_seed)
        print("no --db/--memory given: hosting an in-memory 'default' database",
              file=sys.stderr)
    return dbs


def parse_tokens(entries):
    if not entries:
        return None
    tokens = {}
    for entry in entries:
        tenant, sep, token = entry.partition(":")
        if not sep:
            tenant, token = entry, entry
        tokens[token] = tenant
    return tokens


async def amain(args):
    dbs = open_databases(args)
    server = PIPServer(
        dbs,
        tokens=parse_tokens(args.auth_token),
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_pending=args.max_pending,
        per_tenant=args.per_tenant,
        chunk_rows=args.chunk_rows,
        drain_seconds=args.drain_seconds,
        own_databases=True,
    )
    await server.start()
    if server.tokens is None:
        print("WARNING: auth disabled (no --auth-token); anyone who can "
              "reach %s can query" % server.url, file=sys.stderr)
    print("pip-server listening on %s (%d database(s): %s)"
          % (server.url, len(dbs), ", ".join(sorted(dbs))), file=sys.stderr)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    serve = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("pip-server draining...", file=sys.stderr)
    await server.shutdown()
    serve.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await serve
    print("pip-server stopped", file=sys.stderr)


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(amain(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
