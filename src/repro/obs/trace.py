"""Hierarchical spans: the tracing half of the observability layer.

A :class:`Span` is one timed region of work — a statement, one operator
of its plan, one parallel prefetch batch — with a name, free-form tags,
wall and CPU time, and a bag of counters (bank hits, samples drawn, WAL
bytes) accumulated by the code running inside it.  Spans nest: the
executor's per-operator spans hang off the statement span, worker-job
spans hang off the scheduler's prefetch span, and the finished tree is
what the slow-query log summarises.

The :class:`Tracer` is deliberately boring so the *disabled* path costs
almost nothing: ``span()`` returns a shared no-op context manager after
a single attribute check, and ``count()`` returns after the same check.
Instrumentation points therefore never need their own ``if tracing:``
guards.  Enabled, each thread keeps its own span stack (statements on
different sessions trace independently) and finished root spans land in
a bounded ring buffer read via :meth:`Tracer.take`.

Worker processes never carry a tracer — parallel sampling jobs return
their wall time inside the result payload, and the scheduler folds those
into deterministic ``parallel.job`` child spans **in submission order**
(see :meth:`Tracer.attach`), so a traced parallel run shows the same
span tree shape run after run.

Example
-------
>>> tracer = Tracer(enabled=True)
>>> with tracer.span("query", statement="q1"):
...     with tracer.span("execute.Scan"):
...         tracer.count("rows", 3)
>>> root = tracer.take()[0]
>>> root.name, root.children[0].name, root.children[0].counters["rows"]
('query', 'execute.Scan', 3)
>>> Tracer(enabled=False).span("ignored") is NULL_SPAN
True
"""

import threading
import time
from collections import deque


class Span:
    """One timed, counted, tagged region of work."""

    __slots__ = ("name", "tags", "wall", "cpu", "counters", "children",
                 "_wall_start", "_cpu_start")

    def __init__(self, name, tags=None):
        self.name = name
        self.tags = tags or {}
        self.wall = 0.0
        self.cpu = 0.0
        self.counters = {}
        self.children = []
        self._wall_start = None
        self._cpu_start = None

    def start(self):
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def finish(self):
        if self._wall_start is not None:
            self.wall = time.perf_counter() - self._wall_start
            self.cpu = time.process_time() - self._cpu_start
            self._wall_start = None
        return self

    def count(self, name, n=1):
        """Add ``n`` to this span's counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def total(self, name):
        """Counter ``name`` summed over this span and every descendant."""
        value = self.counters.get(name, 0)
        for child in self.children:
            value += child.total(name)
        return value

    def walk(self):
        """Pre-order iteration over the span tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self):
        """Indented one-line-per-span rendering of the finished tree."""
        lines = []
        self._render_into(lines, 0)
        return "\n".join(lines)

    def _render_into(self, lines, depth):
        parts = ["%s%s" % ("  " * depth, self.name)]
        parts.append("wall=%.3fms" % (self.wall * 1000.0,))
        if self.tags:
            parts.append(
                " ".join("%s=%s" % kv for kv in sorted(self.tags.items()))
            )
        if self.counters:
            parts.append(
                " ".join("%s=%s" % kv for kv in sorted(self.counters.items()))
            )
        lines.append(" ".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1)

    def summary(self, max_spans=12):
        """A compact single-line digest for the slow-query log."""
        parts = []
        for span in self.walk():
            if len(parts) >= max_spans:
                parts.append("...")
                break
            parts.append("%s=%.1fms" % (span.name, span.wall * 1000.0))
        return " ".join(parts)

    def __repr__(self):
        return "<Span %s wall=%.3fms children=%d>" % (
            self.name, self.wall * 1000.0, len(self.children)
        )


class _NullSpan:
    """Shared no-op context manager for the disabled tracer path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False

    def count(self, name, n=1):
        pass


#: The one instance every disabled ``Tracer.span()`` call returns.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Pushes a live span on enter, finishes and files it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self.span = span

    def __enter__(self):
        self._tracer._push(self.span.start())
        return self.span

    def __exit__(self, exc_type, exc_value, traceback):
        self._tracer._pop(self.span.finish())
        return False

    def count(self, name, n=1):
        self.span.count(name, n)


class Tracer:
    """Per-database span collector with a near-zero-cost disabled path.

    ``enabled`` is fixed at construction on purpose: flipping tracing on
    a live database mid-statement would produce half-traced trees, and a
    constant lets every hot instrumentation point reduce to one attribute
    check.  Build a new :class:`~repro.obs.telemetry.Telemetry` (or a new
    database) to change it.
    """

    def __init__(self, enabled=False, max_roots=256):
        self.enabled = enabled
        self._local = threading.local()
        self._roots = deque(maxlen=max_roots)

    # -- recording ---------------------------------------------------------------

    def span(self, name, **tags):
        """Context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, Span(name, tags))

    def count(self, name, n=1):
        """Add ``n`` to the innermost active span's counter ``name``.

        Counts with no active span are dropped — instrumentation points
        never need to know whether a statement span is open above them.
        """
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].count(name, n)

    def attach(self, span):
        """File an externally-built (already finished) span.

        The parallel scheduler uses this to graft worker-job spans under
        its prefetch span in submission order — workers have no tracer,
        they just report wall time in their payloads — which keeps traced
        parallel runs deterministic in shape.
        """
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].children.append(span)
        else:
            self._roots.append(span)

    def current(self):
        """The innermost active span on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- reading -----------------------------------------------------------------

    def take(self):
        """Drain and return the finished root spans (oldest first)."""
        out = []
        while True:
            try:
                out.append(self._roots.popleft())
            except IndexError:
                return out

    def last_root(self):
        """The most recently finished root span, or ``None`` (not drained)."""
        try:
            return self._roots[-1]
        except IndexError:
            return None

    # -- stack plumbing ----------------------------------------------------------

    def _push(self, span):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span):
        stack = self._local.stack
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._roots.append(span)

    def __repr__(self):
        return "<Tracer %s, %d finished root(s)>" % (
            "enabled" if self.enabled else "disabled", len(self._roots)
        )
