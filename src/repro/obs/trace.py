"""Hierarchical spans: the tracing half of the observability layer.

A :class:`Span` is one timed region of work — a statement, one operator
of its plan, one parallel prefetch batch — with a name, free-form tags,
wall and CPU time, and a bag of counters (bank hits, samples drawn, WAL
bytes) accumulated by the code running inside it.  Spans nest: the
executor's per-operator spans hang off the statement span, worker-job
spans hang off the scheduler's prefetch span, and the finished tree is
what the slow-query log summarises.

The :class:`Tracer` is deliberately boring so the *disabled* path costs
almost nothing: ``span()`` returns a shared no-op context manager after
a single attribute check, and ``count()`` returns after the same check.
Instrumentation points therefore never need their own ``if tracing:``
guards.  Enabled, each thread keeps its own span stack (statements on
different sessions trace independently) and finished root spans land in
a bounded ring buffer read via :meth:`Tracer.take`.

Worker processes never carry a tracer — parallel sampling jobs return
their wall time inside the result payload, and the scheduler folds those
into deterministic ``parallel.job`` child spans **in submission order**
(see :meth:`Tracer.attach`), so a traced parallel run shows the same
span tree shape run after run.

**Distributed-trace identity.**  Every span carries W3C-style ids: a
32-hex ``trace_id`` shared by all spans of one logical request, a 16-hex
``span_id`` of its own, and its parent's ``span_id``.  Ids are minted by
an :class:`IdAllocator` backed by a *private* ``random.Random`` — never
the global stream, never numpy — so enabling tracing cannot perturb
sampling, and an injected rng makes ids deterministic for tests.  A
module-level thread-local **id context** is shared by every enabled
tracer on a thread, so spans opened by *different* tracers (the server's
``server.request``, then the database's ``query``) still chain into one
trace; :func:`activate` seeds that context from a remote peer's
``traceparent``, which is how the server adopts a client's trace.

Example
-------
>>> import random
>>> tracer = Tracer(enabled=True, rng=random.Random(7))
>>> with tracer.span("query", statement="q1"):
...     with tracer.span("execute.Scan"):
...         tracer.count("rows", 3)
>>> root = tracer.take()[0]
>>> root.name, root.children[0].name, root.children[0].counters["rows"]
('query', 'execute.Scan', 3)
>>> root.trace_id == root.children[0].trace_id
True
>>> root.children[0].parent_id == root.span_id
True
>>> Tracer(enabled=False).span("ignored") is NULL_SPAN
True
"""

import random
import re
import threading
import time
from collections import deque
from contextlib import contextmanager


class IdAllocator:
    """Mints W3C-sized trace (128-bit) and span (64-bit) ids.

    Backed by its own :class:`random.Random` so id generation never
    consumes the global ``random`` stream or any numpy generator — the
    sampling engine's bit-identity does not depend on whether tracing is
    on.  Inject a seeded rng for deterministic ids in tests.

    >>> import random
    >>> ids = IdAllocator(random.Random(42))
    >>> len(ids.trace_id()), len(ids.span_id())
    (32, 16)
    >>> a, b = IdAllocator(random.Random(3)), IdAllocator(random.Random(3))
    >>> a.trace_id() == b.trace_id()
    True
    """

    __slots__ = ("_rng", "_lock")

    def __init__(self, rng=None):
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()

    def trace_id(self):
        with self._lock:
            return "%032x" % (self._rng.getrandbits(128) or 1,)

    def span_id(self):
        with self._lock:
            return "%016x" % (self._rng.getrandbits(64) or 1,)


# ---------------------------------------------------------------------------
# The shared id context: one thread-local (trace_id, span_id) stack used
# by *every* enabled tracer in the process, so spans from different
# tracers (server telemetry vs database telemetry) chain into one trace.
# ---------------------------------------------------------------------------

_context = threading.local()


def _context_stack():
    stack = getattr(_context, "stack", None)
    if stack is None:
        stack = _context.stack = []
    return stack


def current_trace_id():
    """The trace id active on this thread, or ``None``."""
    stack = getattr(_context, "stack", None)
    return stack[-1][0] if stack else None


def current_span_id():
    """The innermost span id active on this thread, or ``None``."""
    stack = getattr(_context, "stack", None)
    return stack[-1][1] if stack else None


def current_tenant():
    """The tenant attached to this thread's context, or ``None``."""
    return getattr(_context, "tenant", None)


@contextmanager
def activate(trace_id, parent_span_id=None, tenant=None):
    """Run the body inside an adopted trace context.

    The server wraps statement execution in this after parsing a
    client's ``traceparent``: every span any tracer opens inside — and
    every trace id the statement pipeline records even with tracing off
    — inherits ``trace_id``, with ``parent_span_id`` as the parent of
    the outermost span.  ``tenant`` rides along for the slow-query log.

    >>> with activate("ab" * 16, "cd" * 8, tenant="acme"):
    ...     (current_trace_id() == "ab" * 16, current_tenant())
    (True, 'acme')
    >>> current_trace_id() is None
    True
    """
    stack = _context_stack()
    stack.append((trace_id, parent_span_id))
    previous_tenant = getattr(_context, "tenant", None)
    if tenant is not None:
        _context.tenant = tenant
    try:
        yield
    finally:
        stack.pop()
        _context.tenant = previous_tenant


# ---------------------------------------------------------------------------
# traceparent (W3C Trace Context) helpers
# ---------------------------------------------------------------------------

_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def format_traceparent(trace_id, span_id):
    """``00-<trace_id>-<span_id>-01`` — the sampled W3C header form.

    >>> format_traceparent("ab" * 16, "cd" * 8)
    '00-abababababababababababababababab-cdcdcdcdcdcdcdcd-01'
    """
    return "00-%s-%s-01" % (trace_id, span_id)


def parse_traceparent(header):
    """``(trace_id, span_id)`` from a traceparent, or ``None``.

    Anything malformed — wrong version, wrong field widths, the all-zero
    invalid ids, a non-string — yields ``None`` rather than raising: a
    bad header from an old client must never fail the request it rides.

    >>> parse_traceparent(format_traceparent("ab" * 16, "cd" * 8))[1]
    'cdcdcdcdcdcdcdcd'
    >>> parse_traceparent("00-" + "0" * 32 + "-" + "1" * 16 + "-01") is None
    True
    >>> parse_traceparent(None) is None
    True
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.group(1), match.group(2)
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


class Span:
    """One timed, counted, tagged region of work."""

    __slots__ = ("name", "tags", "wall", "cpu", "counters", "children",
                 "trace_id", "span_id", "parent_id",
                 "_wall_start", "_cpu_start")

    def __init__(self, name, tags=None):
        self.name = name
        self.tags = tags or {}
        self.wall = 0.0
        self.cpu = 0.0
        self.counters = {}
        self.children = []
        self.trace_id = None
        self.span_id = None
        self.parent_id = None
        self._wall_start = None
        self._cpu_start = None

    def start(self):
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def finish(self):
        if self._wall_start is not None:
            self.wall = time.perf_counter() - self._wall_start
            self.cpu = time.process_time() - self._cpu_start
            self._wall_start = None
        return self

    def count(self, name, n=1):
        """Add ``n`` to this span's counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def total(self, name):
        """Counter ``name`` summed over this span and every descendant."""
        value = self.counters.get(name, 0)
        for child in self.children:
            value += child.total(name)
        return value

    def walk(self):
        """Pre-order iteration over the span tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self):
        """Indented one-line-per-span rendering of the finished tree."""
        lines = []
        self._render_into(lines, 0)
        return "\n".join(lines)

    def _render_into(self, lines, depth):
        parts = ["%s%s" % ("  " * depth, self.name)]
        parts.append("wall=%.3fms" % (self.wall * 1000.0,))
        if self.tags:
            parts.append(
                " ".join("%s=%s" % kv for kv in sorted(self.tags.items()))
            )
        if self.counters:
            parts.append(
                " ".join("%s=%s" % kv for kv in sorted(self.counters.items()))
            )
        lines.append(" ".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1)

    def summary(self, max_spans=12):
        """A compact single-line digest for the slow-query log."""
        parts = []
        for span in self.walk():
            if len(parts) >= max_spans:
                parts.append("...")
                break
            parts.append("%s=%.1fms" % (span.name, span.wall * 1000.0))
        return " ".join(parts)

    def to_dict(self):
        """The finished tree as JSON-serializable nested dicts — the
        shape the exporter ships and ``GET /v1/traces/{id}`` serves."""
        entry = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall": self.wall,
            "cpu": self.cpu,
        }
        if self.tags:
            entry["tags"] = {str(k): v for k, v in self.tags.items()}
        if self.counters:
            entry["counters"] = dict(self.counters)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    def __repr__(self):
        return "<Span %s wall=%.3fms children=%d>" % (
            self.name, self.wall * 1000.0, len(self.children)
        )


class _NullSpan:
    """Shared no-op context manager for the disabled tracer path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False

    def count(self, name, n=1):
        pass


#: The one instance every disabled ``Tracer.span()`` call returns.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Pushes a live span on enter, finishes and files it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self.span = span

    def __enter__(self):
        self._tracer._push(self.span.start())
        return self.span

    def __exit__(self, exc_type, exc_value, traceback):
        self._tracer._pop(self.span.finish())
        return False

    def count(self, name, n=1):
        self.span.count(name, n)


class Tracer:
    """Per-database span collector with a near-zero-cost disabled path.

    ``enabled`` is fixed at construction on purpose: flipping tracing on
    a live database mid-statement would produce half-traced trees, and a
    constant lets every hot instrumentation point reduce to one attribute
    check.  Build a new :class:`~repro.obs.telemetry.Telemetry` (or a new
    database) to change it.
    """

    def __init__(self, enabled=False, max_roots=256, rng=None):
        self.enabled = enabled
        self.ids = IdAllocator(rng)
        #: Callback fired with each finished root span (the exporter
        #: hooks this); exceptions are swallowed — observing a statement
        #: must never fail it.
        self.on_root = None
        self._local = threading.local()
        self._roots = deque(maxlen=max_roots)

    # -- recording ---------------------------------------------------------------

    def span(self, name, **tags):
        """Context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, Span(name, tags))

    def count(self, name, n=1):
        """Add ``n`` to the innermost active span's counter ``name``.

        Counts with no active span are dropped — instrumentation points
        never need to know whether a statement span is open above them.
        """
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].count(name, n)

    def attach(self, span):
        """File an externally-built (already finished) span.

        The parallel scheduler uses this to graft worker-job spans under
        its prefetch span in submission order — workers have no tracer,
        they just report wall time in their payloads — which keeps traced
        parallel runs deterministic in shape.
        """
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            parent = stack[-1]
            if span.trace_id is None:
                span.trace_id = parent.trace_id
                span.parent_id = parent.span_id
            if span.span_id is None:
                span.span_id = self.ids.span_id()
            parent.children.append(span)
        else:
            self._roots.append(span)

    def current(self):
        """The innermost active span on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- reading -----------------------------------------------------------------

    def take(self):
        """Drain and return the finished root spans (oldest first)."""
        out = []
        while True:
            try:
                out.append(self._roots.popleft())
            except IndexError:
                return out

    def last_root(self):
        """The most recently finished root span, or ``None`` (not drained)."""
        try:
            return self._roots[-1]
        except IndexError:
            return None

    def roots(self):
        """A non-draining snapshot of the finished root spans."""
        return list(self._roots)

    def find_trace(self, trace_id):
        """Finished root spans belonging to ``trace_id`` (not drained).

        Feeds ``GET /v1/traces/{trace_id}``: a distributed trace shows
        up as several *local* roots — the server's ``server.request``,
        the database's ``query`` — linked by ``parent_id``.
        """
        return [span for span in list(self._roots)
                if span.trace_id == trace_id]

    # -- stack plumbing ----------------------------------------------------------

    def _push(self, span):
        # Ids come from the cross-tracer context first, so a span opened
        # under another tracer's span (or an adopted remote context)
        # joins that trace instead of starting its own.
        context = _context_stack()
        if context:
            span.trace_id, span.parent_id = context[-1]
        else:
            span.trace_id = self.ids.trace_id()
        span.span_id = self.ids.span_id()
        context.append((span.trace_id, span.span_id))
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span):
        context = getattr(_context, "stack", None)
        if context:
            context.pop()
        stack = self._local.stack
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._roots.append(span)
            if self.on_root is not None:
                try:
                    self.on_root(span)
                except Exception:
                    pass

    def __repr__(self):
        return "<Tracer %s, %d finished root(s)>" % (
            "enabled" if self.enabled else "disabled", len(self._roots)
        )
