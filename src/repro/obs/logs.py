"""The ``repro.*`` logging hierarchy and the slow-query log.

Everything the repo logs goes through stdlib :mod:`logging` under one
root logger named ``repro`` — ``repro.slowquery``, ``repro.storage``,
``repro.parallel`` — so an embedding application configures verbosity,
handlers and formatting with the tools it already has::

    import logging
    logging.basicConfig(level=logging.INFO)
    logging.getLogger("repro").setLevel(logging.WARNING)

By default the root ``repro`` logger carries a ``NullHandler``: a
library must stay silent unless its host asks otherwise.

The :class:`SlowQueryLog` is the one built-in consumer: statements whose
wall time crosses a configurable threshold are logged (WARNING) with the
statement text, a stable **plan digest** — so recurring offenders can be
grouped across parameter bindings — the elapsed time, the per-query
sampling stats, and a span summary when tracing is enabled.

Example
-------
>>> log = SlowQueryLog(threshold=0.5)
>>> log.observe("SELECT 1", elapsed=0.1)   # under threshold: not logged
False
>>> SlowQueryLog(threshold=None).observe("SELECT 1", elapsed=99.0)
False
"""

import logging
import re
import zlib

#: Root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name=None):
    """The ``repro`` logger, or a child (``get_logger("storage")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(ROOT_LOGGER_NAME + "." + name)


_WS = re.compile(r"\s+")


def collapse_statement(text, limit=200):
    """One-line, length-capped rendering of a SQL statement for logs."""
    flat = _WS.sub(" ", text).strip()
    if len(flat) > limit:
        flat = flat[: limit - 3] + "..."
    return flat


def plan_digest(plan):
    """A short stable digest of a plan's shape.

    Hashes the rendered operator tree, so two bindings of one prepared
    statement share a digest while structurally different plans (a bound
    parameter deciding a predicate, say) get their own.  Returns ``"-"``
    for no plan.
    """
    if plan is None:
        return "-"
    return "%08x" % (zlib.crc32(plan.explain().encode("utf-8")),)


class SlowQueryLog:
    """Threshold-gated statement logger.

    Parameters
    ----------
    threshold:
        Wall-time threshold in **seconds**; ``None`` disables the log
        entirely (the default — production embeddings opt in).
    logger:
        Destination logger; defaults to ``repro.slowquery``.
    """

    def __init__(self, threshold=None, logger=None):
        self.threshold = threshold
        self.logger = logger if logger is not None else get_logger("slowquery")

    @property
    def enabled(self):
        return self.threshold is not None

    def observe(self, text, elapsed, plan=None, stats=None, span=None,
                trace_id=None, tenant=None, shards=None):
        """Log the statement if it crossed the threshold.

        Returns whether a record was emitted, so callers can count slow
        queries without re-checking the threshold.  ``trace_id``,
        ``tenant`` (the authenticated principal, for statements arriving
        over the wire) and ``shards`` (the worker indices a sharded
        database scattered the statement's sampling to) are appended
        when known, so slow-query lines join up with exported traces,
        per-tenant accounting, and shard attribution.
        """
        if self.threshold is None or elapsed < self.threshold:
            return False
        parts = [
            "slow query (%.1f ms, threshold %.1f ms)"
            % (elapsed * 1000.0, self.threshold * 1000.0),
            "statement=%r" % (collapse_statement(text),),
            "plan=%s" % (plan_digest(plan),),
        ]
        if trace_id is not None:
            parts.append("trace_id=%s" % (trace_id,))
        if tenant is not None:
            parts.append("tenant=%s" % (tenant,))
        if shards:
            parts.append("shards=%s" % (shards,))
        if stats is not None:
            parts.append(
                "rows=%d samples_drawn=%d samples_reused=%d bank_hits=%d"
                % (stats.rows, stats.samples_drawn, stats.samples_reused,
                   stats.bank_hits)
            )
        if span is not None:
            parts.append("spans[%s]" % (span.summary(),))
        self.logger.warning(" ".join(parts))
        return True

    def __repr__(self):
        if self.threshold is None:
            return "<SlowQueryLog disabled>"
        return "<SlowQueryLog threshold=%.1fms>" % (self.threshold * 1000.0,)
