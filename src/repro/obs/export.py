"""Telemetry export: ship finished spans and metric snapshots off-process.

The PR 6 observability layer kept everything in in-memory ring buffers;
this module is the outbound half of the cross-process pipeline
(ISSUE 9): a :class:`TelemetryExporter` drains a bounded queue on a
background daemon thread into a pluggable sink —

* :class:`FileSink` — newline-delimited JSON, one record per line
  (``schemas/trace_export.schema.json`` pins the shape), the format the
  CI ``obs-e2e`` job validates; or
* :class:`HTTPSink` — OTLP-shaped JSON (``resourceSpans`` →
  ``scopeSpans`` → flattened spans) POSTed with stdlib ``urllib``, so a
  collector endpoint can ingest it without any client library.

The contract that keeps telemetry observe-only: **the query path never
blocks on export**.  :meth:`TelemetryExporter.enqueue` is a lock, a
length check and an append; when the queue is full the record is dropped
and counted (:attr:`TelemetryExporter.dropped`) rather than waited on,
and sink failures drop the batch the same way.  Export is configured via
``PIP_TRACE_EXPORT=file:<path>`` or ``PIP_TRACE_EXPORT=http(s)://<url>``
(see :meth:`repro.obs.telemetry.Telemetry.from_env`), which implies
tracing on.

Example
-------
>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "spans.ndjson")
>>> exporter = TelemetryExporter(FileSink(path), autostart=False)
>>> exporter.enqueue({"kind": "metrics", "ts": 0.0, "metrics": {}})
>>> exporter.shutdown()
>>> import json
>>> json.loads(open(path).read())["kind"]
'metrics'
"""

import json
import os
import threading
import time
import urllib.request


def validate_record(record, schema, _root=None):
    """Check one export record against the checked-in JSON Schema.

    A deliberately small validator for the subset the schema uses —
    ``type``, ``const``, ``pattern``, ``required``, ``properties``,
    ``items``, ``oneOf`` and local ``$ref`` — so the test suite and the
    CI ``obs-e2e`` job can validate ``schemas/trace_export.schema.json``
    without a jsonschema dependency.  Raises :class:`ValueError` with
    the failing path on mismatch.

    >>> schema = {"type": "object", "required": ["kind"],
    ...           "properties": {"kind": {"const": "span"}}}
    >>> validate_record({"kind": "span"}, schema)
    >>> validate_record({"kind": "other"}, schema)
    Traceback (most recent call last):
        ...
    ValueError: $.kind: expected const 'span', got 'other'
    """
    import re

    root = _root if _root is not None else schema

    def resolve(node):
        ref = node.get("$ref")
        if ref is None:
            return node
        target = root
        for part in ref.lstrip("#/").split("/"):
            target = target[part]
        return target

    def type_ok(value, expected):
        checks = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "number": lambda v: (isinstance(v, (int, float))
                                 and not isinstance(v, bool)),
            "null": lambda v: v is None,
        }
        names = expected if isinstance(expected, list) else [expected]
        return any(checks[name](value) for name in names)

    def check(value, node, path):
        node = resolve(node)
        if "oneOf" in node:
            errors = []
            for option in node["oneOf"]:
                try:
                    check(value, option, path)
                    return
                except ValueError as exc:
                    errors.append(str(exc))
            raise ValueError("%s: matched no oneOf branch (%s)"
                             % (path, "; ".join(errors)))
        if "const" in node and value != node["const"]:
            raise ValueError("%s: expected const %r, got %r"
                             % (path, node["const"], value))
        if "type" in node and not type_ok(value, node["type"]):
            raise ValueError("%s: expected type %s, got %r"
                             % (path, node["type"], type(value).__name__))
        if "pattern" in node:
            if not isinstance(value, str) or \
                    re.match(node["pattern"], value) is None:
                raise ValueError("%s: %r does not match %r"
                                 % (path, value, node["pattern"]))
        if isinstance(value, dict):
            for name in node.get("required", ()):
                if name not in value:
                    raise ValueError("%s: missing required key %r"
                                     % (path, name))
            for name, sub in node.get("properties", {}).items():
                if name in value:
                    check(value[name], sub, "%s.%s" % (path, name))
        if isinstance(value, list) and "items" in node:
            for index, item in enumerate(value):
                check(item, node["items"], "%s[%d]" % (path, index))

    check(record, schema, "$")


def parse_target(value):
    """``PIP_TRACE_EXPORT`` value → a sink instance (``None`` for empty).

    >>> parse_target("file:/tmp/x.ndjson").kind
    'file'
    >>> parse_target("http://127.0.0.1:9/otlp").kind
    'http'
    >>> parse_target("") is None
    True
    """
    if not value:
        return None
    value = value.strip()
    if value.startswith("file:"):
        return FileSink(value[len("file:"):])
    if value.startswith(("http://", "https://")):
        return HTTPSink(value)
    raise ValueError(
        "PIP_TRACE_EXPORT must be file:<path> or http(s)://<url>, got %r"
        % (value,)
    )


class FileSink:
    """Append records to a file as newline-delimited JSON."""

    kind = "file"

    def __init__(self, path):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    def emit(self, records):
        lines = [json.dumps(record, separators=(",", ":"), default=str)
                 for record in records]
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    def __repr__(self):
        return "<FileSink %s>" % (self.path,)


def _otlp_flatten(entry, ts, out):
    """One nested span dict → flat OTLP span entries (children recurse).

    OTLP spans are flat and parent-linked; wall times become start/end
    nanosecond stamps anchored at the record's enqueue time.
    """
    wall_ns = int(entry.get("wall", 0.0) * 1e9)
    end_ns = int(ts * 1e9)
    attributes = [
        {"key": str(key), "value": {"stringValue": str(value)}}
        for key, value in sorted((entry.get("tags") or {}).items())
    ]
    attributes.extend(
        {"key": "counter.%s" % (key,), "value": {"intValue": str(value)}}
        for key, value in sorted((entry.get("counters") or {}).items())
    )
    out.append({
        "traceId": entry.get("trace_id") or "",
        "spanId": entry.get("span_id") or "",
        "parentSpanId": entry.get("parent_id") or "",
        "name": entry.get("name", ""),
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": str(end_ns - wall_ns),
        "endTimeUnixNano": str(end_ns),
        "attributes": attributes,
    })
    for child in entry.get("children", ()):
        _otlp_flatten(child, ts, out)


def otlp_envelope(records):
    """A batch of exporter records → one OTLP-shaped JSON request body.

    Span records flatten into ``resourceSpans``; metric snapshots ride
    along as gauge points under ``resourceMetrics``.
    """
    spans, metrics = [], []
    for record in records:
        ts = record.get("ts", 0.0)
        if record.get("kind") == "span":
            _otlp_flatten(record, ts, spans)
        elif record.get("kind") == "metrics":
            ts_ns = str(int(ts * 1e9))
            for name, value in sorted((record.get("metrics") or {}).items()):
                if not isinstance(value, (int, float)):
                    continue  # histogram sub-dicts: skip in the OTLP view
                metrics.append({
                    "name": name,
                    "gauge": {"dataPoints": [
                        {"timeUnixNano": ts_ns, "asDouble": float(value)}
                    ]},
                })
    envelope = {}
    if spans:
        envelope["resourceSpans"] = [{
            "resource": {"attributes": [
                {"key": "service.name", "value": {"stringValue": "pip"}}
            ]},
            "scopeSpans": [{"scope": {"name": "repro.obs"}, "spans": spans}],
        }]
    if metrics:
        envelope["resourceMetrics"] = [{
            "resource": {"attributes": [
                {"key": "service.name", "value": {"stringValue": "pip"}}
            ]},
            "scopeMetrics": [{"scope": {"name": "repro.obs"},
                              "metrics": metrics}],
        }]
    return envelope


class HTTPSink:
    """POST OTLP-shaped JSON batches to a collector URL (stdlib-only).

    Failures count (:attr:`failures`) and drop the batch; the exporter
    thread absorbs the latency, never the query path.
    """

    kind = "http"

    def __init__(self, url, timeout=2.0):
        self.url = url
        self.timeout = timeout
        self.failures = 0

    def emit(self, records):
        body = json.dumps(otlp_envelope(records), default=str).encode("utf-8")
        request = urllib.request.Request(
            self.url, data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except Exception:
            self.failures += 1
            raise

    def __repr__(self):
        return "<HTTPSink %s (%d failure(s))>" % (self.url, self.failures)


class TelemetryExporter:
    """Bounded-queue background exporter feeding one sink.

    Parameters
    ----------
    sink:
        Anything with ``emit(records)`` — :class:`FileSink`,
        :class:`HTTPSink`, or a test double.
    max_queue:
        Records held before drop-and-count backpressure kicks in.
    batch_size:
        Records per ``emit`` call (also the early-wake threshold).
    flush_interval:
        Seconds the drain thread sleeps between idle flushes.
    metrics_fn:
        Optional zero-arg callable returning a metrics snapshot dict;
        sampled every ``metrics_interval`` seconds and once at shutdown.
    autostart:
        ``False`` keeps the drain thread unstarted (tests exercise the
        queue synchronously; :meth:`shutdown` still drains).
    """

    def __init__(self, sink, max_queue=1024, batch_size=64,
                 flush_interval=0.5, metrics_fn=None, metrics_interval=5.0,
                 autostart=True):
        self.sink = sink
        self.dropped = 0
        self._queue = []
        self._max_queue = max_queue
        self._batch_size = max(1, batch_size)
        self._flush_interval = flush_interval
        self._metrics_fn = metrics_fn
        self._metrics_interval = metrics_interval
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stopping = False
        self._thread = None
        if autostart:
            self._thread = threading.Thread(
                target=self._run, name="pip-telemetry-export", daemon=True
            )
            self._thread.start()

    # -- the producer side (called from the query path) --------------------------

    def export_root(self, span):
        """``Tracer.on_root`` hook: enqueue one finished root span."""
        self.enqueue(dict(span.to_dict(), kind="span", ts=time.time()))

    def export_metrics(self):
        """Enqueue one metrics snapshot (also called at shutdown)."""
        if self._metrics_fn is None:
            return
        try:
            snapshot = self._metrics_fn()
        except Exception:
            return
        self.enqueue({"kind": "metrics", "ts": time.time(),
                      "metrics": snapshot})

    def enqueue(self, record):
        """Non-blocking: queue a record, or drop-and-count when full."""
        with self._lock:
            if self._stopping or len(self._queue) >= self._max_queue:
                self.dropped += 1
                return
            self._queue.append(record)
            pending = len(self._queue)
        if pending >= self._batch_size:
            self._wake.set()

    @property
    def pending(self):
        return len(self._queue)

    # -- the consumer side --------------------------------------------------------

    def _run(self):
        next_metrics = time.monotonic() + self._metrics_interval
        while True:
            self._wake.wait(self._flush_interval)
            self._wake.clear()
            if self._metrics_fn is not None and time.monotonic() >= next_metrics:
                self.export_metrics()
                next_metrics = time.monotonic() + self._metrics_interval
            self._drain()
            if self._stopping:
                return

    def _drain(self):
        while True:
            with self._lock:
                if not self._queue:
                    return
                batch = self._queue[: self._batch_size]
                del self._queue[: self._batch_size]
            try:
                self.sink.emit(batch)
            except Exception:
                self.dropped += len(batch)

    def shutdown(self, timeout=2.0):
        """Flush (with a final metrics snapshot) and stop the thread.

        Idempotent; later records are dropped-and-counted."""
        if not self._stopping:
            self.export_metrics()
        self._stopping = True
        self._wake.set()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout)
        self._drain()  # whatever the thread left (or autostart=False)

    def __repr__(self):
        return "<TelemetryExporter %r pending=%d dropped=%d>" % (
            self.sink, self.pending, self.dropped
        )
