"""The persistent query-profile history (``pip_query_history``).

Every finished *relational* statement leaves one bounded history record:
timestamp, collapsed statement text, plan digest, trace id, elapsed
wall, row count, the statement's sample-bank deltas, and a per-operator
wall summary when tracing was on.  The store is the SkyServer lesson
(PAPERS.md) applied to PIP — the query workload of a served database is
itself the key dataset for operating it.

Three read paths share the one store:

* SQL — ``db.sql("SELECT ... FROM pip_query_history")`` via the
  database's virtual-catalog hook (:meth:`PIPDatabase.table`), which
  materialises the ring buffer as an ordinary c-table per statement;
* HTTP — ``GET /v1/history?db=NAME`` on the server;
* gauges — record/segment/byte/dropped counts on ``/metrics/{db}``.

Durability: databases opened with :meth:`PIPDatabase.open` attach the
store to ``<dbpath>/obs/``, where full segments of records are written
as JSON files (flushed on checkpoint and close, pruned to a bounded
segment count, reloaded on reopen).  In-memory databases keep only the
ring buffer.  Recording is observe-only — it never touches the WAL,
sampling streams or result rows — so enabling it preserves bit-identity
(``tests/test_observability.py`` holds the proof).

Example
-------
>>> history = QueryHistory(max_records=2)
>>> for n in range(3):
...     history.record({"statement": "q%d" % n, "elapsed": 0.1, "rows": 1})
>>> [r["statement"] for r in history.records()]
['q1', 'q2']
>>> history.dropped
1
"""

import json
import os
import threading
from collections import deque

#: Column layout of the ``pip_query_history`` virtual table.
HISTORY_SCHEMA = (
    ("ts", "float"),
    ("statement", "str"),
    ("plan", "str"),
    ("trace_id", "str"),
    ("elapsed", "float"),
    ("rows", "int"),
    ("bank_hits", "int"),
    ("bank_misses", "int"),
    ("samples_drawn", "int"),
    ("samples_reused", "int"),
    ("operators", "str"),
    ("shards", "str"),
)

#: Names served by the database's virtual-catalog hook rather than the
#: stored-table catalog; mutating statements refuse these names.
VIRTUAL_TABLES = frozenset({"pip_query_history"})

_SEGMENT_PREFIX = "history-"
_SEGMENT_SUFFIX = ".json"


class QueryHistory:
    """Bounded ring buffer of statement profiles with on-disk segments.

    Parameters
    ----------
    max_records:
        Ring-buffer capacity; the oldest record is dropped (and counted)
        when a new one arrives at capacity.
    segment_records:
        Records per on-disk segment file (disk-backed stores only).
    max_segments:
        Segments kept on disk; older ones are pruned at flush.
    enabled:
        ``False`` turns :meth:`record` into a no-op (``PIP_QUERY_HISTORY=0``).
    """

    def __init__(self, max_records=512, segment_records=128, max_segments=8,
                 enabled=True):
        self.enabled = enabled
        self.max_records = max_records
        self.segment_records = max(1, segment_records)
        self.max_segments = max(1, max_segments)
        self.dropped = 0
        self._records = deque(maxlen=max_records)
        self._pending = []  # recorded since the last flush (disk-backed)
        self._dir = None
        self._next_segment = 1
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------------

    def record(self, entry):
        """File one statement profile (a plain JSON-safe dict)."""
        if not self.enabled:
            return
        with self._lock:
            if len(self._records) == self.max_records:
                self.dropped += 1
            self._records.append(entry)
            if self._dir is not None:
                self._pending.append(entry)
                if len(self._pending) >= self.segment_records:
                    self._flush_locked()

    # -- reading ------------------------------------------------------------------

    def records(self, limit=None):
        """A snapshot of the retained records, oldest first."""
        with self._lock:
            out = list(self._records)
        if limit is not None:
            out = out[-max(0, int(limit)):]
        return out

    def __len__(self):
        return len(self._records)

    def as_table(self, name="pip_query_history"):
        """The history as a fresh :class:`~repro.ctables.table.CTable`.

        Built per call — the virtual-catalog hook hands every statement
        its own materialisation, so the columnar layer's per-object
        caches can never serve a stale snapshot.
        """
        from repro.ctables.schema import Schema
        from repro.ctables.table import CTable

        table = CTable(Schema(list(HISTORY_SCHEMA)), name=name)
        for entry in self.records():
            table.add_row(tuple(
                entry.get(column, _DEFAULTS[ctype])
                for column, ctype in HISTORY_SCHEMA
            ))
        return table

    # -- the disk tier ------------------------------------------------------------

    @property
    def directory(self):
        return self._dir

    def attach_dir(self, path):
        """Bind the store to ``<dbpath>/obs/`` and reload prior segments.

        Called by :meth:`PIPDatabase.open` after recovery; the newest
        ``max_records`` records across the retained segments come back
        into the ring buffer, oldest first.
        """
        os.makedirs(path, exist_ok=True)
        with self._lock:
            self._dir = path
            loaded = []
            for index, segment in self._segments_locked():
                self._next_segment = max(self._next_segment, index + 1)
                try:
                    with open(segment, encoding="utf-8") as handle:
                        loaded.extend(json.load(handle))
                except (OSError, ValueError):
                    continue  # a torn segment loses its records, not the db
            for entry in loaded:
                self._records.append(entry)
        return self

    def flush(self):
        """Write pending records as one segment (no-op when in-memory)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self):
        if self._dir is None or not self._pending:
            return
        segment = os.path.join(
            self._dir,
            "%s%06d%s" % (_SEGMENT_PREFIX, self._next_segment, _SEGMENT_SUFFIX),
        )
        tmp = segment + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self._pending, handle, separators=(",", ":"),
                          default=str)
            os.replace(tmp, segment)
        except OSError:
            return  # history is best-effort; never fail the statement
        self._next_segment += 1
        self._pending = []
        for _index, stale in self._segments_locked()[: -self.max_segments]:
            try:
                os.remove(stale)
            except OSError:
                pass

    def _segments_locked(self):
        """``(index, path)`` pairs of on-disk segments, oldest first."""
        if self._dir is None:
            return []
        out = []
        try:
            names = os.listdir(self._dir)
        except OSError:
            return []
        for name in names:
            if not (name.startswith(_SEGMENT_PREFIX)
                    and name.endswith(_SEGMENT_SUFFIX)):
                continue
            stem = name[len(_SEGMENT_PREFIX): -len(_SEGMENT_SUFFIX)]
            try:
                index = int(stem)
            except ValueError:
                continue
            out.append((index, os.path.join(self._dir, name)))
        out.sort()
        return out

    # -- gauges -------------------------------------------------------------------

    def segment_count(self):
        return len(self._segments_locked())

    def bytes_on_disk(self):
        total = 0
        for _index, segment in self._segments_locked():
            try:
                total += os.path.getsize(segment)
            except OSError:
                pass
        return total

    def __repr__(self):
        return "<QueryHistory %d record(s)%s%s>" % (
            len(self._records),
            (", dir=%s" % (self._dir,)) if self._dir else "",
            "" if self.enabled else ", disabled",
        )


_DEFAULTS = {"float": 0.0, "int": 0, "str": ""}
