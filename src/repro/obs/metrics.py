"""Counters, gauges and histograms with Prometheus text exposition.

The registry half of the observability layer: named instruments a
database (or any subsystem) registers once and updates cheaply.  It
deliberately implements the subset of the Prometheus data model the repo
needs — no labels, no exemplars — because every metric here is already
per-database, and a future network service (ROADMAP item 1) can add its
own per-endpoint labelling on top.

* :class:`Counter` — monotonically increasing total (``pip_queries_total``).
* :class:`Gauge` — a settable value, or a **callback** read at collection
  time (bank hit rate, pool size): the source of truth stays where it
  lives and the registry never holds a stale copy.
* :class:`Histogram` — cumulative-bucket latency/size distribution in
  the Prometheus style (``_bucket{le=...}``, ``_sum``, ``_count``).

``snapshot()`` returns plain dicts for programmatic use
(:meth:`PIPDatabase.metrics`); ``prometheus()`` renders the standard
text exposition format (``# HELP`` / ``# TYPE`` + samples) so a scrape
endpoint only has to serve the string.

Example
-------
>>> registry = MetricsRegistry()
>>> queries = registry.counter("pip_queries_total", "Statements executed.")
>>> queries.inc()
>>> registry.snapshot()["pip_queries_total"]
1
>>> lat = registry.histogram("pip_query_seconds", "Latency.", buckets=(0.1, 1.0))
>>> lat.observe(0.05)
>>> print(registry.prometheus())  # doctest: +NORMALIZE_WHITESPACE
# HELP pip_queries_total Statements executed.
# TYPE pip_queries_total counter
pip_queries_total 1
# HELP pip_query_seconds Latency.
# TYPE pip_query_seconds histogram
pip_query_seconds_bucket{le="0.1"} 1
pip_query_seconds_bucket{le="1.0"} 1
pip_query_seconds_bucket{le="+Inf"} 1
pip_query_seconds_sum 0.05
pip_query_seconds_count 1
"""

import re
import threading

#: Metric names follow the Prometheus grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency buckets (seconds): sub-millisecond parses up to
#: multi-second Monte Carlo aggregates.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value):
    """One Prometheus sample value: integers stay integral."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return "%.1f" % (value,)
    return repr(value)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name, help_text):
        self.name = name
        self.help = help_text
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n=1):
        if n < 0:
            raise ValueError("counter %r cannot decrease (inc %r)" % (self.name, n))
        with self._lock:
            self._value += n

    @property
    def value(self):
        return self._value

    def samples(self):
        return [(self.name, self._value)]

    def snapshot(self):
        return self._value


class Gauge:
    """A point-in-time value: set directly, or computed by a callback."""

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    kind = "gauge"

    def __init__(self, name, help_text, fn=None):
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value):
        if self._fn is not None:
            raise ValueError("gauge %r is callback-backed; it cannot be set" % (self.name,))
        with self._lock:
            self._value = value

    def inc(self, n=1):
        if self._fn is not None:
            raise ValueError("gauge %r is callback-backed; it cannot be set" % (self.name,))
        with self._lock:
            self._value += n

    def dec(self, n=1):
        self.inc(-n)

    @property
    def value(self):
        if self._fn is not None:
            return self._fn()
        return self._value

    def samples(self):
        return [(self.name, self.value)]

    def snapshot(self):
        return self.value


class Histogram:
    """Cumulative-bucket distribution (Prometheus semantics).

    ``buckets`` is the sorted sequence of finite upper bounds; the
    implicit ``+Inf`` bucket is always present.  Internally the counts
    are stored per-bucket and cumulated at exposition time, so
    ``observe`` is a single linear probe plus two adds.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    kind = "histogram"

    def __init__(self, name, help_text, buckets=DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram %r needs at least one bucket" % (name,))
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram %r has duplicate buckets" % (name,))
        self.name = name
        self.help = help_text
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot: > last bound
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value):
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def cumulative(self):
        """``[(upper_bound, cumulative_count), ...]`` ending with +Inf."""
        out = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self._count))
        return out

    def samples(self):
        out = []
        for bound, running in self.cumulative():
            label = "+Inf" if bound == float("inf") else _format_value(bound)
            out.append(('%s_bucket{le="%s"}' % (self.name, label), running))
        out.append((self.name + "_sum", self._sum))
        out.append((self.name + "_count", self._count))
        return out

    def snapshot(self):
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                ("+Inf" if bound == float("inf") else bound): running
                for bound, running in self.cumulative()
            },
        }


class MetricsRegistry:
    """Named instruments, registered once, exposed together.

    Registration is idempotent per (name, kind): asking again returns
    the existing instrument, so independent modules can share a metric
    without coordinating.  Re-registering a name as a different kind is
    an error — silently returning the wrong type would corrupt both.
    """

    def __init__(self):
        self._instruments = {}
        self._lock = threading.Lock()

    def _register(self, cls, name, help_text, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % (name,))
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        "metric %r is already registered as a %s"
                        % (name, existing.kind)
                    )
                return existing
            instrument = cls(name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help_text=""):
        return self._register(Counter, name, help_text)

    def gauge(self, name, help_text="", fn=None):
        return self._register(Gauge, name, help_text, fn=fn)

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS):
        return self._register(Histogram, name, help_text, buckets=buckets)

    def get(self, name):
        """The registered instrument, or ``None``."""
        return self._instruments.get(name)

    def names(self):
        return sorted(self._instruments)

    # -- exposition --------------------------------------------------------------

    def snapshot(self):
        """Plain-value dict: counters/gauges to numbers, histograms to
        ``{"count", "sum", "buckets"}`` dicts (the ``db.metrics()`` shape)."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def prometheus(self):
        """The text exposition format, instruments in name order."""
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        lines = []
        for inst in instruments:
            lines.append("# HELP %s %s" % (inst.name, inst.help))
            lines.append("# TYPE %s %s" % (inst.name, inst.kind))
            for sample_name, value in inst.samples():
                lines.append("%s %s" % (sample_name, _format_value(value)))
        return "\n".join(lines)

    def __repr__(self):
        return "<MetricsRegistry %d instrument(s)>" % (len(self._instruments),)
