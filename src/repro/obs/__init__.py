"""Observability: tracing spans, a metrics registry, and structured logs.

The measurement substrate for every later performance PR (see
``docs/observability.md``):

* :mod:`repro.obs.trace` — hierarchical spans with a near-zero-cost
  disabled path.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with Prometheus
  text exposition.
* :mod:`repro.obs.logs` — the ``repro.*`` logging hierarchy and the
  slow-query log.
* :mod:`repro.obs.telemetry` — the per-database facade wiring the three
  together (``db.telemetry``).
* :mod:`repro.obs.export` — pluggable span/metric export (NDJSON file,
  OTLP-shaped HTTP) behind a bounded never-blocking queue.
* :mod:`repro.obs.history` — the bounded on-disk query-profile history
  surfaced as the ``pip_query_history`` virtual table.
"""

from repro.obs.export import (
    FileSink,
    HTTPSink,
    TelemetryExporter,
    parse_target,
    validate_record,
)
from repro.obs.history import HISTORY_SCHEMA, QueryHistory
from repro.obs.logs import ROOT_LOGGER_NAME, SlowQueryLog, collapse_statement, get_logger, plan_digest
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_SPAN,
    IdAllocator,
    Span,
    Tracer,
    activate,
    current_tenant,
    current_trace_id,
    format_traceparent,
    parse_traceparent,
)

__all__ = [
    "ROOT_LOGGER_NAME",
    "SlowQueryLog",
    "collapse_statement",
    "get_logger",
    "plan_digest",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "IdAllocator",
    "activate",
    "current_tenant",
    "current_trace_id",
    "format_traceparent",
    "parse_traceparent",
    "FileSink",
    "HTTPSink",
    "TelemetryExporter",
    "parse_target",
    "validate_record",
    "QueryHistory",
    "HISTORY_SCHEMA",
]
