"""The :class:`Telemetry` facade: one object carrying a database's
tracer, metrics registry and slow-query log.

Every :class:`~repro.core.database.PIPDatabase` owns exactly one
``Telemetry`` (``db.telemetry``); instrumentation points across the
engine, sample bank, parallel scheduler, WAL and transaction layer call
its ``on_*`` hooks, each of which is a no-op after one flag check when
the corresponding signal is off.  Nothing here ever touches RNG streams,
sampling order, lock scopes or WAL record contents — telemetry observes
execution, it never steers it — which is what makes the
enabled-vs-disabled bit-identity guarantee structural rather than
incidental (``tests/test_observability.py`` enforces it).

Configuration is constructor-first with an environment overlay for CI
and operations:

* ``PIP_TRACE=1`` — enable span collection.
* ``PIP_METRICS=0`` — disable the metrics counters (they are cheap and
  on by default).
* ``PIP_SLOW_QUERY_MS=250`` — arm the slow-query log at 250 ms.
* ``PIP_TRACE_EXPORT=file:<path>`` or ``http(s)://<url>`` — ship
  finished root spans and periodic metric snapshots to a sink (implies
  tracing on; see :mod:`repro.obs.export`).

Example
-------
>>> telemetry = Telemetry(tracing=True)
>>> telemetry.tracer.enabled, telemetry.metrics_enabled
(True, True)
>>> Telemetry.disabled().active
False
>>> "pip_queries_total" in Telemetry().registry.names()
True
"""

import os
import weakref

from repro.obs import trace as _trace
from repro.obs.export import TelemetryExporter, parse_target
from repro.obs.logs import SlowQueryLog, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _env_flag(name, default=False):
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


class Telemetry:
    """Tracing + metrics + slow-query logging for one database."""

    def __init__(self, tracing=False, metrics=True, slow_query_seconds=None,
                 export=None, trace_rng=None):
        # Export implies tracing: the exporter is fed by root-span
        # completion, so spans must be collected for anything to ship.
        if export:
            tracing = True
        self.tracer = Tracer(enabled=tracing, rng=trace_rng)
        self.metrics_enabled = metrics
        self.registry = MetricsRegistry()
        self.slow_log = SlowQueryLog(slow_query_seconds)
        self.log = get_logger()
        self._define_instruments()
        self.exporter = self._build_exporter(export)
        if self.exporter is not None:
            self.tracer.on_root = self.exporter.export_root
            registry = self.registry
            registry.gauge(
                "pip_export_queue",
                "Telemetry records waiting in the export queue.",
                fn=lambda: self.exporter.pending,
            )
            registry.gauge(
                "pip_export_dropped",
                "Telemetry records dropped by export backpressure.",
                fn=lambda: self.exporter.dropped,
            )

    def _build_exporter(self, export):
        """``export`` may be None, a ``file:``/``http(s)://`` target
        string, a sink (anything with ``emit``), or a ready-made
        :class:`TelemetryExporter`."""
        if not export:
            return None
        if isinstance(export, TelemetryExporter):
            return export
        sink = parse_target(export) if isinstance(export, str) else export
        if sink is None:
            return None
        return TelemetryExporter(sink, metrics_fn=self.registry.snapshot)

    def shutdown(self):
        """Flush and stop the exporter (idempotent; no-op without one)."""
        if self.exporter is not None:
            self.exporter.shutdown()

    @classmethod
    def from_env(cls):
        """The default build: constructor defaults + environment overlay."""
        threshold_ms = os.environ.get("PIP_SLOW_QUERY_MS")
        return cls(
            tracing=_env_flag("PIP_TRACE", False),
            metrics=_env_flag("PIP_METRICS", True),
            slow_query_seconds=(
                float(threshold_ms) / 1000.0 if threshold_ms else None
            ),
            export=os.environ.get("PIP_TRACE_EXPORT") or None,
        )

    @classmethod
    def disabled(cls):
        """Everything off: the bit-identity reference configuration."""
        return cls(tracing=False, metrics=False, slow_query_seconds=None)

    @property
    def active(self):
        """Whether any signal is being collected at all."""
        return (
            self.tracer.enabled or self.metrics_enabled or self.slow_log.enabled
        )

    # -- instruments -------------------------------------------------------------

    def _define_instruments(self):
        registry = self.registry
        self.queries_total = registry.counter(
            "pip_queries_total", "Statements executed through the SQL pipeline."
        )
        self.query_seconds = registry.histogram(
            "pip_query_seconds", "Statement wall time in seconds."
        )
        self.rows_returned_total = registry.counter(
            "pip_rows_returned_total", "Result rows returned by queries."
        )
        self.rows_scanned_total = registry.counter(
            "pip_rows_scanned_total", "Rows read by Scan operators."
        )
        self.slow_queries_total = registry.counter(
            "pip_slow_queries_total", "Statements that crossed the slow-query threshold."
        )
        self.wal_appends_total = registry.counter(
            "pip_wal_appends_total", "Records appended to the write-ahead log."
        )
        self.wal_bytes_total = registry.counter(
            "pip_wal_bytes_total", "Encoded bytes appended to the write-ahead log."
        )
        self.wal_fsyncs_total = registry.counter(
            "pip_wal_fsyncs_total", "fsync() calls issued by the write-ahead log."
        )
        self.checkpoints_total = registry.counter(
            "pip_checkpoints_total", "Snapshot checkpoints written."
        )
        self.txn_begun_total = registry.counter(
            "pip_txn_begun_total", "Transactions begun."
        )
        self.txn_committed_total = registry.counter(
            "pip_txn_committed_total", "Transactions committed."
        )
        self.txn_conflicts_total = registry.counter(
            "pip_txn_conflicts_total", "Commits refused by first-committer-wins."
        )
        self.txn_rolled_back_total = registry.counter(
            "pip_txn_rolled_back_total", "Transactions rolled back."
        )
        self.parallel_batches_total = registry.counter(
            "pip_parallel_batches_total", "Parallel prefetch batches dispatched."
        )
        self.parallel_jobs_total = registry.counter(
            "pip_parallel_jobs_total", "Group sampling jobs dispatched to workers."
        )
        self.parallel_merged_total = registry.counter(
            "pip_parallel_merged_total", "Worker bundles merged into the sample bank."
        )
        self.shard_batches_total = registry.counter(
            "pip_shard_batches_total",
            "Shard prefetch batches scattered by the coordinator.",
        )
        self.shard_jobs_total = registry.counter(
            "pip_shard_jobs_total",
            "Group sampling jobs shipped to shard workers.",
        )
        self.shard_merged_total = registry.counter(
            "pip_shard_merged_total",
            "Shard payloads merged into the coordinator's sample bank.",
        )
        self.columnar_chunks_scanned_total = registry.counter(
            "pip_columnar_chunks_scanned_total",
            "Column chunks evaluated by vectorized filters.",
        )
        self.columnar_chunks_pruned_zonemap_total = registry.counter(
            "pip_columnar_chunks_pruned_zonemap_total",
            "Column chunks skipped by zone-map (min/max) pruning.",
        )
        self.columnar_chunks_pruned_bloom_total = registry.counter(
            "pip_columnar_chunks_pruned_bloom_total",
            "Column chunks skipped by Bloom-filter equality pruning.",
        )
        registry.gauge(
            "pip_txn_conflict_rate",
            "Conflicted commits / attempted commits (0 with no commits).",
            fn=self._conflict_rate,
        )

    def _conflict_rate(self):
        conflicts = self.txn_conflicts_total.value
        attempts = conflicts + self.txn_committed_total.value
        return (conflicts / attempts) if attempts else 0.0

    def bind(self, db):
        """Register the live gauges that read database state at scrape
        time (bank hit rate and counters, pool size, open sessions).

        Holds the database weakly: telemetry must never keep a closed
        database alive just because a registry snapshot might ask.
        """
        ref = weakref.ref(db)

        def bank_counter(name):
            def read():
                live = ref()
                return getattr(live.sample_bank.stats_counters, name) if live else 0
            return read

        def hit_rate():
            live = ref()
            if live is None:
                return 0.0
            return live.sample_bank.hit_rate or 0.0

        def bank_entries():
            live = ref()
            return len(live.sample_bank._store) if live else 0

        def bank_bytes():
            live = ref()
            return live.sample_bank._store.bytes_in_memory() if live else 0

        def pool_workers():
            live = ref()
            if live is None or live.scheduler.pool is None:
                return 0
            return live.scheduler.pool.workers

        def sessions_open():
            live = ref()
            return len(live._sessions) if live else 0

        registry = self.registry
        registry.gauge(
            "pip_bank_hit_rate",
            "Sample-bank lookup hit rate (0 before any lookup).",
            fn=hit_rate,
        )
        registry.gauge(
            "pip_bank_entries", "Sample bundles held in memory.", fn=bank_entries
        )
        registry.gauge(
            "pip_bank_bytes_in_memory",
            "In-memory sample-bundle footprint in bytes.",
            fn=bank_bytes,
        )
        for name, help_text in (
            ("hits", "Sample-bank lookups served from cache."),
            ("misses", "Sample-bank lookups that materialised a bundle."),
            ("topups", "Incremental extensions of cached bundles."),
            ("samples_drawn", "Conditional samples freshly materialised."),
            ("samples_served", "Conditional samples handed to queries."),
            ("invalidated", "Bundles dropped by mutation invalidation."),
        ):
            registry.gauge("pip_bank_" + name, help_text, fn=bank_counter(name))
        registry.gauge(
            "pip_pool_workers",
            "Live parallel sampling workers (0 when the pool is idle).",
            fn=pool_workers,
        )
        registry.gauge(
            "pip_sessions_open", "Sessions currently open.", fn=sessions_open
        )

        def history_value(reader):
            def read():
                live = ref()
                if live is None:
                    return 0
                return reader(live.history)
            return read

        registry.gauge(
            "pip_history_records",
            "Query-profile records retained in the history ring buffer.",
            fn=history_value(len),
        )
        registry.gauge(
            "pip_history_segments",
            "Query-history segment files on disk.",
            fn=history_value(lambda h: h.segment_count()),
        )
        registry.gauge(
            "pip_history_bytes_on_disk",
            "Bytes of query-history segments on disk.",
            fn=history_value(lambda h: h.bytes_on_disk()),
        )
        registry.gauge(
            "pip_history_dropped",
            "Query-profile records evicted from the history ring buffer.",
            fn=history_value(lambda h: h.dropped),
        )
        return self

    def bind_server(self, server):
        """Register the network-service instruments (ROADMAP item 1).

        Called once by :class:`~repro.server.app.PIPServer` on the
        telemetry it owns — separate from any hosted database's
        telemetry, so per-database counters never mix with per-endpoint
        ones.  Holds the server weakly, mirroring :meth:`bind`.
        """
        ref = weakref.ref(server)

        def connections_open():
            live = ref()
            return live.connections_open if live else 0

        def queue_depth():
            live = ref()
            return live.admission.pending if live else 0

        def requests_active():
            live = ref()
            return live.admission.active if live else 0

        registry = self.registry
        self.server_requests_total = registry.counter(
            "pip_server_requests_total", "Requests handled by the server."
        )
        self.server_errors_total = registry.counter(
            "pip_server_errors_total", "Requests that finished with a wire error."
        )
        self.server_rejected_total = registry.counter(
            "pip_server_rejected_total",
            "Requests refused by admission control or auth.",
        )
        self.server_request_seconds = registry.histogram(
            "pip_server_request_seconds", "Server request wall time in seconds."
        )
        registry.gauge(
            "pip_server_connections",
            "Open client connections.",
            fn=connections_open,
        )
        registry.gauge(
            "pip_server_queue_depth",
            "Requests waiting in the admission queue.",
            fn=queue_depth,
        )
        registry.gauge(
            "pip_server_requests_active",
            "Requests currently executing.",
            fn=requests_active,
        )
        return self

    def on_server_request(self, elapsed, ok=True):
        """One served request finished (``ok=False``: with a wire error)."""
        if self.metrics_enabled:
            self.server_requests_total.inc()
            self.server_request_seconds.observe(elapsed)
            if not ok:
                self.server_errors_total.inc()

    def on_server_rejected(self):
        """A request was refused before execution (auth / admission)."""
        if self.metrics_enabled:
            self.server_rejected_total.inc()

    # -- instrumentation hooks ---------------------------------------------------
    #
    # Each hook is the single point its subsystem calls; the flag checks
    # live here so call sites stay one line and the disabled path stays
    # one comparison.

    def finish_statement(self, text, plan, elapsed, stats=None, trace_id=None,
                         shards=None):
        """Statement epilogue: latency metrics + slow-query log.

        ``shards`` is the statement's shard-attribution string (e.g.
        ``"0,2"``) when it ran on a sharded database and touched workers.
        """
        if self.metrics_enabled:
            self.queries_total.inc()
            self.query_seconds.observe(elapsed)
            if stats is not None:
                self.rows_returned_total.inc(stats.rows)
        if self.slow_log.enabled:
            span = self.tracer.last_root() if self.tracer.enabled else None
            if self.slow_log.observe(
                text, elapsed, plan=plan, stats=stats, span=span,
                trace_id=trace_id or _trace.current_trace_id(),
                tenant=_trace.current_tenant(), shards=shards,
            ) and self.metrics_enabled:
                self.slow_queries_total.inc()

    def on_rows_scanned(self, n):
        if self.metrics_enabled:
            self.rows_scanned_total.inc(n)
        self.tracer.count("rows.scanned", n)

    def on_columnar_scan(self, scanned, pruned_zone, pruned_bloom):
        if self.metrics_enabled:
            self.columnar_chunks_scanned_total.inc(scanned)
            self.columnar_chunks_pruned_zonemap_total.inc(pruned_zone)
            self.columnar_chunks_pruned_bloom_total.inc(pruned_bloom)
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("columnar.chunks_scanned", scanned)
            tracer.count("columnar.chunks_pruned", pruned_zone + pruned_bloom)

    def on_wal_append(self, nbytes, fsynced):
        if self.metrics_enabled:
            self.wal_appends_total.inc()
            self.wal_bytes_total.inc(nbytes)
            if fsynced:
                self.wal_fsyncs_total.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("wal.appends")
            tracer.count("wal.bytes", nbytes)
            if fsynced:
                tracer.count("wal.fsyncs")

    def on_wal_fsync(self):
        if self.metrics_enabled:
            self.wal_fsyncs_total.inc()
        self.tracer.count("wal.fsyncs")

    def on_checkpoint(self):
        if self.metrics_enabled:
            self.checkpoints_total.inc()

    def on_txn_event(self, event):
        """``event`` is one of ``begin``/``commit``/``conflict``/``rollback``."""
        if self.metrics_enabled:
            counter = {
                "begin": self.txn_begun_total,
                "commit": self.txn_committed_total,
                "conflict": self.txn_conflicts_total,
                "rollback": self.txn_rolled_back_total,
            }[event]
            counter.inc()
        self.tracer.count("txn." + event)

    def on_parallel_prefetch(self, dispatched, merged):
        if self.metrics_enabled:
            self.parallel_batches_total.inc()
            self.parallel_jobs_total.inc(dispatched)
            self.parallel_merged_total.inc(merged)

    def on_shard_prefetch(self, dispatched, merged):
        """One coordinator scatter-gather finished (repro.shard)."""
        if self.metrics_enabled:
            self.shard_batches_total.inc()
            self.shard_jobs_total.inc(dispatched)
            self.shard_merged_total.inc(merged)

    def __repr__(self):
        flags = []
        if self.tracer.enabled:
            flags.append("tracing")
        if self.metrics_enabled:
            flags.append("metrics")
        if self.slow_log.enabled:
            flags.append("slowlog")
        return "<Telemetry %s>" % ("+".join(flags) if flags else "off",)
