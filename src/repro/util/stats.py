"""Streaming statistics and error metrics.

Algorithm 4.3 maintains ``Sum`` and ``SumSq`` accumulators to decide when the
(epsilon, delta) precision goal is met; :class:`RunningStats` packages that
bookkeeping (as Welford's algorithm, which is numerically safer than the
naive sum-of-squares the pseudocode shows).  The module also carries the RMS
error metric used by Figure 7 of the paper.
"""

import math

import numpy as np


class RunningStats:
    """Welford online mean/variance accumulator.

    Supports scalar updates and batched numpy updates; the two may be mixed.
    """

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value):
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def update_batch(self, values):
        """Add a batch of observations (numpy array or sequence)."""
        values = np.asarray(values, dtype=float)
        n_b = values.size
        if n_b == 0:
            return
        mean_b = float(values.mean())
        m2_b = float(((values - mean_b) ** 2).sum())
        if self.count == 0:
            self.count = n_b
            self._mean = mean_b
            self._m2 = m2_b
            return
        n_a = self.count
        delta = mean_b - self._mean
        total = n_a + n_b
        self._mean += delta * n_b / total
        self._m2 += m2_b + delta * delta * n_a * n_b / total
        self.count = total

    @property
    def mean(self):
        return self._mean if self.count else math.nan

    @property
    def variance(self):
        """Population variance (the estimator Algorithm 4.3 uses)."""
        if self.count == 0:
            return math.nan
        return self._m2 / self.count

    @property
    def sample_variance(self):
        """Unbiased sample variance."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self):
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    @property
    def stderr(self):
        """Standard error of the mean."""
        if self.count == 0:
            return math.inf
        return self.stddev / math.sqrt(self.count)

    def merge(self, other):
        """Combine with another accumulator (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            return self
        n_a, n_b = self.count, other.count
        delta = other._mean - self._mean
        total = n_a + n_b
        self._mean += delta * n_b / total
        self._m2 += other._m2 + delta * delta * n_a * n_b / total
        self.count = total
        return self

    def __repr__(self):
        return "RunningStats(n=%d, mean=%.6g, sd=%.6g)" % (
            self.count,
            self.mean,
            self.stddev,
        )


def rms_error(estimates, truth):
    """Root-mean-square error of ``estimates`` around the true value,
    normalised by the true value — the metric plotted in Figure 7.

    ``truth`` may be a scalar (one quantity, many trials) or an array
    aligned with ``estimates``.
    """
    estimates = np.asarray(estimates, dtype=float)
    truth_arr = np.asarray(truth, dtype=float)
    if truth_arr.ndim == 0:
        denom = abs(float(truth_arr))
    else:
        denom = np.abs(truth_arr)
    rmse = np.sqrt(np.mean((estimates - truth_arr) ** 2))
    scale = float(np.mean(denom)) if np.ndim(denom) else denom
    if scale == 0:
        return float(rmse)
    return float(rmse / scale)


def relative_error(estimate, truth):
    """|estimate - truth| / |truth| with a zero-truth guard."""
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def z_for_confidence(epsilon):
    """z-score such that a two-sided normal tail has mass ``epsilon``.

    This is the paper's ``target = sqrt(2) * erf^-1(1 - epsilon)`` from
    Algorithm 4.3 line 3.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie strictly between 0 and 1")
    return math.sqrt(2.0) * _erfinv(1.0 - epsilon)


def _erfinv(y):
    """Inverse error function via scipy when available, else Newton."""
    try:
        from scipy.special import erfinv

        return float(erfinv(y))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        x = 0.0
        for _ in range(60):
            err = math.erf(x) - y
            slope = 2.0 / math.sqrt(math.pi) * math.exp(-x * x)
            x -= err / slope
        return x
