"""Pickle support for immutable ``__slots__`` classes.

The symbolic layer (expressions, atoms, conditions, variables) blocks
``__setattr__`` to enforce immutability.  That also breaks pickle's
default slot restoration, which goes through ``setattr``.  The parallel
sampling executor ships groups, atoms and conditions to worker processes
by pickle, so those classes install the two hooks below: state capture
walks the MRO's ``__slots__``, restoration writes through
``object.__setattr__`` (bypassing the immutability guard exactly once,
during unpickling — the object is not yet visible to anyone else).
"""


def slot_state(obj):
    """All slot values of ``obj`` (across the MRO) as a plain dict."""
    state = {}
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if hasattr(obj, name):
                state[name] = getattr(obj, name)
    return state


def restore_slot_state(obj, state):
    """Write a :func:`slot_state` dict back, bypassing immutability."""
    for name, value in state.items():
        object.__setattr__(obj, name, value)
