"""Plain-text table rendering for c-tables, query results and benchmarks.

The benchmark harness prints the same rows/series the paper's figures show;
this module keeps the formatting in one place.
"""


def render_table(headers, rows, title=None, max_width=38):
    """Render rows as an ASCII table.

    ``headers`` is a sequence of column names; ``rows`` a sequence of
    sequences.  Cells are stringified with ``_fmt`` which keeps floats
    short.  Returns a single string (no trailing newline).
    """
    headers = [str(h) for h in headers]
    text_rows = [[_fmt(cell, max_width) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def line(cells):
        padded = []
        for i, width in enumerate(widths):
            cell = cells[i] if i < len(cells) else ""
            padded.append(cell.ljust(width))
        return "| " + " | ".join(padded) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(headers))
    out.append(sep)
    for row in text_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def _fmt(cell, max_width):
    if isinstance(cell, float):
        if cell != cell:  # NaN
            text = "NaN"
        elif abs(cell) >= 1e6 or (cell != 0 and abs(cell) < 1e-4):
            text = "%.4g" % cell
        else:
            text = "%.6g" % cell
    else:
        text = str(cell)
    if len(text) > max_width:
        text = text[: max_width - 1] + "…"
    return text


def format_series(name, xs, ys, x_label="x", y_label="y"):
    """Format a named (x, y) series as the rows a paper figure plots."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return render_table([x_label, y_label], rows, title=name)
