"""Closed real intervals with infinite endpoints.

Algorithm 3.2 of the paper tightens per-variable bounds maps.  Entries in
those maps are intervals of the form ``[lo, hi]`` where either endpoint may
be infinite.  This module supplies the interval type along with the
intersection and arithmetic operations the bounds-tightening pass needs.

Intervals are treated as *closed*: a degenerate interval ``[c, c]`` is
non-empty and contains exactly ``c``.  Emptiness is represented explicitly
rather than with ``lo > hi`` so that code never accidentally treats an empty
interval as a valid range.
"""

import math


class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals.

    Instances are immutable.  ``Interval.empty()`` constructs the canonical
    empty interval; every other constructor call must satisfy ``lo <= hi``.
    """

    __slots__ = ("lo", "hi", "_empty")

    def __init__(self, lo=-math.inf, hi=math.inf, _empty=False):
        if _empty:
            self.lo = math.inf
            self.hi = -math.inf
            self._empty = True
            return
        lo = float(lo)
        hi = float(hi)
        if math.isnan(lo) or math.isnan(hi):
            raise ValueError("interval endpoints may not be NaN")
        if lo > hi:
            raise ValueError("interval lower bound %r exceeds upper %r" % (lo, hi))
        self.lo = lo
        self.hi = hi
        self._empty = False

    @classmethod
    def empty(cls):
        """The canonical empty interval."""
        return cls(_empty=True)

    @classmethod
    def point(cls, value):
        """The degenerate interval containing exactly ``value``."""
        return cls(value, value)

    @classmethod
    def at_least(cls, lo):
        """``[lo, +inf]``."""
        return cls(lo, math.inf)

    @classmethod
    def at_most(cls, hi):
        """``[-inf, hi]``."""
        return cls(-math.inf, hi)

    # -- predicates -------------------------------------------------------

    @property
    def is_empty(self):
        return self._empty

    @property
    def is_full(self):
        return not self._empty and self.lo == -math.inf and self.hi == math.inf

    @property
    def is_point(self):
        return not self._empty and self.lo == self.hi

    @property
    def is_bounded(self):
        """True when both endpoints are finite."""
        return not self._empty and math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, value):
        """Whether ``value`` lies inside the closed interval."""
        if self._empty:
            return False
        return self.lo <= value <= self.hi

    def width(self):
        """Length of the interval (``inf`` for unbounded, 0 for empty)."""
        if self._empty:
            return 0.0
        return self.hi - self.lo

    # -- lattice operations ------------------------------------------------

    def intersect(self, other):
        """Intersection of two closed intervals."""
        if self._empty or other._empty:
            return Interval.empty()
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return Interval.empty()
        return Interval(lo, hi)

    def hull(self, other):
        """Smallest interval containing both operands."""
        if self._empty:
            return other
        if other._empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- interval arithmetic (used by linear bound propagation) ------------

    def __add__(self, other):
        if isinstance(other, Interval):
            if self._empty or other._empty:
                return Interval.empty()
            return Interval(_safe_add(self.lo, other.lo), _safe_add(self.hi, other.hi))
        if self._empty:
            return Interval.empty()
        return Interval(_safe_add(self.lo, other), _safe_add(self.hi, other))

    __radd__ = __add__

    def __neg__(self):
        if self._empty:
            return Interval.empty()
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other):
        if isinstance(other, Interval):
            return self + (-other)
        return self + (-other)

    def __rsub__(self, other):
        return (-self) + other

    def scale(self, factor):
        """Multiply by a scalar, flipping endpoints for negative factors."""
        if self._empty:
            return Interval.empty()
        factor = float(factor)
        if factor == 0.0:
            return Interval.point(0.0)
        lo = _safe_mul(self.lo, factor)
        hi = _safe_mul(self.hi, factor)
        if factor < 0:
            lo, hi = hi, lo
        return Interval(lo, hi)

    def __mul__(self, other):
        if isinstance(other, Interval):
            if self._empty or other._empty:
                return Interval.empty()
            products = [
                _safe_mul(self.lo, other.lo),
                _safe_mul(self.lo, other.hi),
                _safe_mul(self.hi, other.lo),
                _safe_mul(self.hi, other.hi),
            ]
            return Interval(min(products), max(products))
        return self.scale(other)

    __rmul__ = __mul__

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, Interval):
            return NotImplemented
        if self._empty and other._empty:
            return True
        return (
            not self._empty
            and not other._empty
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self):
        if self._empty:
            return hash(("interval", "empty"))
        return hash(("interval", self.lo, self.hi))

    def __repr__(self):
        if self._empty:
            return "Interval.empty()"
        return "Interval(%r, %r)" % (self.lo, self.hi)


def _safe_add(a, b):
    """Extended-real addition; inf + -inf never arises in bound tightening,
    but we guard against it anyway by collapsing to the finite operand."""
    if math.isinf(a) and math.isinf(b) and (a > 0) != (b > 0):
        return 0.0
    return a + b


def _safe_mul(a, b):
    """Extended-real multiplication with 0 * inf = 0 (measure convention)."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


FULL_INTERVAL = Interval()
EMPTY_INTERVAL = Interval.empty()
