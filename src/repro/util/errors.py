"""Exception hierarchy for the PIP reproduction.

Every error raised by the library derives from :class:`PIPError` so callers
can catch library failures with a single except clause.
"""


class PIPError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(PIPError):
    """A table or query referenced a column or type that does not exist."""


class ParseError(PIPError):
    """The SQL front end could not parse its input.

    Carries the offending position so error messages can point at the
    source text.
    """

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = "%s (line %d, column %d)" % (message, line, col)
        super().__init__(message)


class PlanError(PIPError):
    """A logical plan could not be built or executed."""


class DistributionError(PIPError):
    """A distribution class was misused (bad parameters, missing method)."""


class SamplingError(PIPError):
    """The sampling subsystem could not produce a usable sample."""


class InconsistentConditionError(PIPError):
    """An operation required a consistent condition but got a contradiction."""


class StorageError(PIPError):
    """The durable storage subsystem hit an unrecoverable on-disk state
    (damaged WAL header, unreadable snapshot, mismatched database seed)."""


class SessionError(PIPError):
    """A session was used after it (or its database) was closed."""


class TransactionError(SessionError):
    """Transaction misuse: nested ``begin()``, ``commit()``/``rollback()``
    without an open transaction, or a write-write conflict detected at
    commit (another session committed to the same table first)."""
