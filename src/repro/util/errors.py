"""Exception hierarchy for the PIP reproduction.

Every error raised by the library derives from :class:`PIPError` so callers
can catch library failures with a single except clause.

Each class carries a stable, machine-readable ``code`` (``"PIP-..."``):
the network service layer maps exceptions to wire errors by code — never
by string matching on messages — and the client maps codes back to the
same exception classes, so ``except TransactionError:`` works identically
against a local database and a remote one.  Codes are part of the wire
protocol (see ``docs/server.md``); changing one is a protocol break.
"""


class PIPError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable machine-readable error code (wire-protocol contract).
    code = "PIP-ERROR"


class SchemaError(PIPError):
    """A table or query referenced a column or type that does not exist."""

    code = "PIP-SCHEMA"


class ParseError(PIPError):
    """The SQL front end could not parse its input.

    Carries the offending position so error messages can point at the
    source text.
    """

    code = "PIP-PARSE"

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = "%s (line %d, column %d)" % (message, line, col)
        super().__init__(message)


class PlanError(PIPError):
    """A logical plan could not be built or executed."""

    code = "PIP-PLAN"


class DistributionError(PIPError):
    """A distribution class was misused (bad parameters, missing method)."""

    code = "PIP-DISTRIBUTION"


class SamplingError(PIPError):
    """The sampling subsystem could not produce a usable sample."""

    code = "PIP-SAMPLING"


class InconsistentConditionError(PIPError):
    """An operation required a consistent condition but got a contradiction."""

    code = "PIP-INCONSISTENT"


class StorageError(PIPError):
    """The durable storage subsystem hit an unrecoverable on-disk state
    (damaged WAL header, unreadable snapshot, mismatched database seed)."""

    code = "PIP-STORAGE"


class SessionError(PIPError):
    """A session was used after it (or its database) was closed."""

    code = "PIP-SESSION"


class TransactionError(SessionError):
    """Transaction misuse: nested ``begin()``, ``commit()``/``rollback()``
    without an open transaction, or a write-write conflict detected at
    commit (another session committed to the same table first)."""

    code = "PIP-TXN"


class WireFormatError(PIPError):
    """A wire payload could not be encoded or decoded (unknown envelope
    version, malformed message, value the codec refuses to carry)."""

    code = "PIP-WIRE"


class AuthError(PIPError):
    """The server rejected a request's credentials (missing, unknown, or
    not authorized for the requested database)."""

    code = "PIP-AUTH"


class AdmissionError(PIPError):
    """The server refused a request under load: the bounded request queue
    is full, or the tenant exceeded its concurrency cap for too long.
    Clients should back off and retry."""

    code = "PIP-BUSY"


class ProtocolError(PIPError):
    """A peer violated the wire protocol (bad opcode, unknown operation,
    malformed frame or JSON)."""

    code = "PIP-PROTOCOL"


class ShutdownError(SessionError):
    """The server is draining: it no longer accepts new statements; the
    connection's open transaction (if any) has been rolled back."""

    code = "PIP-SHUTDOWN"


class ShardError(PIPError):
    """The shard plane failed: a worker process would not start, died
    mid-batch, or answered a shard RPC with garbage (see ``repro.shard``)."""

    code = "PIP-SHARD"


#: Every PIPError subclass the wire protocol can name, keyed by code.
#: The client uses this to re-raise the *same* exception class a local
#: database would have raised.
CODE_TO_ERROR = {
    cls.code: cls
    for cls in (
        PIPError,
        SchemaError,
        ParseError,
        PlanError,
        DistributionError,
        SamplingError,
        InconsistentConditionError,
        StorageError,
        SessionError,
        TransactionError,
        WireFormatError,
        AuthError,
        AdmissionError,
        ProtocolError,
        ShutdownError,
        ShardError,
    )
}


def error_code(exc):
    """The stable wire code for an exception (``"PIP-INTERNAL"`` for
    anything that is not a :class:`PIPError`)."""
    if isinstance(exc, PIPError):
        return exc.code
    return "PIP-INTERNAL"


def error_from_code(code, message):
    """Rebuild the exception a wire error stands for.

    Unknown codes (a newer server) degrade to :class:`PIPError` — the
    message still reaches the caller, and ``except PIPError:`` still
    catches it.
    """
    cls = CODE_TO_ERROR.get(code, PIPError)
    if cls is ParseError:
        return ParseError(message)
    exc = cls(message)
    return exc
