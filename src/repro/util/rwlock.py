"""A reentrant reader-writer lock for statement-level isolation.

The session/transaction layer runs every statement under this lock: read
statements share it, mutating statements (and transaction commits, which
swap whole tables) hold it exclusively.  Concurrent reader sessions
therefore never observe a half-applied write — they see the state before
a writer statement/commit or after it, never the middle.

Properties:

* **Reentrant per thread.**  A thread holding the write lock may acquire
  it again (mutation entry points re-enter when the SQL executor calls
  the Python mutation API), and may acquire the read lock for free (a
  write hold already excludes every other thread).  A thread holding the
  read lock may re-acquire it.
* **Writer-preferring.**  New readers queue behind a waiting writer, so
  a steady stream of readers cannot starve mutations — except readers
  that already hold the lock, which re-enter freely (blocking them would
  deadlock against themselves).
* **No upgrades.**  Acquiring the write lock while holding only the read
  lock raises ``RuntimeError`` instead of deadlocking; the statement
  layer classifies each statement up front precisely so upgrades never
  happen.
"""

import threading
from contextlib import contextmanager


class RWLock:
    """Reentrant, writer-preferring readers/writer lock."""

    def __init__(self):
        self._cond = threading.Condition()
        self._reader_holds = 0  # total read entries across all threads
        self._writer = None  # ident of the thread holding write, if any
        self._write_depth = 0
        self._write_waiters = 0
        self._local = threading.local()

    # -- per-thread bookkeeping -------------------------------------------------

    def _read_depth(self):
        return getattr(self._local, "read_depth", 0)

    # -- read side ----------------------------------------------------------------

    def acquire_read(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or self._read_depth():
                # Reentrant (or read-under-own-write): never wait, waiting
                # would deadlock against our own hold.
                self._local.read_depth = self._read_depth() + 1
                if self._writer != me:
                    self._reader_holds += 1
                return
            while self._writer is not None or self._write_waiters:
                self._cond.wait()
            self._local.read_depth = 1
            self._reader_holds += 1

    def release_read(self):
        me = threading.get_ident()
        with self._cond:
            depth = self._read_depth()
            if depth <= 0:
                raise RuntimeError("release_read() without a matching acquire")
            self._local.read_depth = depth - 1
            if self._writer != me:
                self._reader_holds -= 1
                if not self._reader_holds:
                    self._cond.notify_all()

    # -- write side ---------------------------------------------------------------

    def acquire_write(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if self._read_depth():
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock; classify "
                    "the statement as writing before executing it"
                )
            self._write_waiters += 1
            try:
                while self._writer is not None or self._reader_holds:
                    self._cond.wait()
            finally:
                self._write_waiters -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write() by a non-owning thread")
            self._write_depth -= 1
            if not self._write_depth:
                self._writer = None
                self._cond.notify_all()

    # -- context managers -----------------------------------------------------------

    @contextmanager
    def read(self):
        """``with lock.read():`` — shared statement scope."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive statement/commit scope."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self):
        return "<RWLock readers=%d writer=%r depth=%d>" % (
            self._reader_holds,
            self._writer,
            self._write_depth,
        )
