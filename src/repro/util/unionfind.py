"""Disjoint-set (union-find) over hashable keys.

Used to split condition atoms into *minimal independent subsets*
(Section IV-A(c) of the paper): atoms sharing a variable must end up in the
same sampling group, and the groups are exactly the connected components of
the atom/variable sharing graph.
"""


class UnionFind:
    """Union-find with path compression and union by rank.

    Keys may be any hashable value and are registered lazily on first use.
    """

    def __init__(self, keys=()):
        self._parent = {}
        self._rank = {}
        for key in keys:
            self.add(key)

    def add(self, key):
        """Register ``key`` as a singleton set if it is not yet known."""
        if key not in self._parent:
            self._parent[key] = key
            self._rank[key] = 0

    def __contains__(self, key):
        return key in self._parent

    def __len__(self):
        return len(self._parent)

    def find(self, key):
        """Representative of the set containing ``key`` (adds it if new)."""
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a, b):
        """Merge the sets containing ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def connected(self, a, b):
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self):
        """All sets, as a list of lists; singletons included.

        Order is deterministic: groups appear in order of first insertion of
        their representative member, and members keep insertion order.
        """
        by_root = {}
        for key in self._parent:
            by_root.setdefault(self.find(key), []).append(key)
        return list(by_root.values())
