"""Shared utilities: intervals, union-find, statistics, hashing, rendering.

These are the dependency-free building blocks used throughout the PIP
reproduction.  Nothing in this package knows about random variables,
c-tables, or queries.
"""

from repro.util.errors import (
    PIPError,
    SchemaError,
    ParseError,
    PlanError,
    DistributionError,
    SamplingError,
    InconsistentConditionError,
    StorageError,
    SessionError,
    TransactionError,
)
from repro.util.intervals import Interval, FULL_INTERVAL, EMPTY_INTERVAL
from repro.util.rwlock import RWLock
from repro.util.unionfind import UnionFind
from repro.util.stats import RunningStats, rms_error, relative_error
from repro.util.hashing import stable_hash64, derive_seed
from repro.util.text import render_table

__all__ = [
    "PIPError",
    "SchemaError",
    "ParseError",
    "PlanError",
    "DistributionError",
    "SamplingError",
    "InconsistentConditionError",
    "StorageError",
    "SessionError",
    "TransactionError",
    "RWLock",
    "Interval",
    "FULL_INTERVAL",
    "EMPTY_INTERVAL",
    "UnionFind",
    "RunningStats",
    "rms_error",
    "relative_error",
    "stable_hash64",
    "derive_seed",
    "render_table",
]
