"""Deterministic seed derivation.

The paper stores only a seed per random variable: "multiple calls to
Generate with the same seed value produce the same sample, so only the seed
value need be stored" (Section V-B).  We mirror that by deriving every
pseudo-random stream from a stable 64-bit hash of ``(variable id, subscript,
world index, base seed)``.  Python's builtin ``hash`` is salted per process,
so we implement a small splitmix64-style mixer over a stable encoding
instead.
"""

import struct as _struct

_MASK64 = (1 << 64) - 1


def _mix64(x):
    """splitmix64 finalizer; good avalanche behaviour, trivially portable."""
    x &= _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _feed(acc, part):
    if isinstance(part, str):
        for ch in part.encode("utf-8"):
            acc = _mix64(acc ^ ch)
    elif isinstance(part, bool):
        acc = _mix64(acc ^ int(part))
    elif isinstance(part, int):
        acc = _mix64(acc ^ (part & _MASK64) ^ ((part >> 64) & _MASK64))
    elif isinstance(part, float):
        # struct keeps the encoding independent of PYTHONHASHSEED, so keys
        # derived from distribution parameters survive process restarts
        # (the sample bank's on-disk spill relies on this).
        acc = _mix64(acc ^ 0x666C ^ int.from_bytes(_struct.pack("<d", part), "little"))
    elif part is None:
        acc = _mix64(acc ^ 0xDEADBEEF)
    elif isinstance(part, (tuple, list)):
        # Length-prefixed, and every element is terminated by a separator
        # mix: without it adjacent strings concatenate ambiguously, so
        # ("x", "ab", "c") and ("x", "a", "bc") would collide — fatal for
        # the sample bank's content-addressed keys.
        acc = _mix64(acc ^ 0x7475706C ^ len(part))
        for item in part:
            acc = _feed(acc, item)
            acc = _mix64(acc ^ 0x1F)
    else:
        raise TypeError("unhashable seed part: %r" % (part,))
    return acc


def stable_hash64(*parts):
    """Combine ints/strings/floats/nested tuples into a stable 64-bit hash.

    The result depends only on the values supplied, never on process state,
    so sampling is reproducible across runs and machines.  Tuples and lists
    hash structurally (the sample bank keys cache entries by the nested
    ``key()`` tuples of atoms and conditions).
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = _feed(acc, part)
    return acc


def derive_seed(base_seed, *parts):
    """Derive a child seed from a base seed and identifying parts.

    Used to give each (variable, subscript, world) triple its own
    independent-looking but fully deterministic stream.
    """
    return stable_hash64(base_seed, *parts)
