"""Deterministic seed derivation.

The paper stores only a seed per random variable: "multiple calls to
Generate with the same seed value produce the same sample, so only the seed
value need be stored" (Section V-B).  We mirror that by deriving every
pseudo-random stream from a stable 64-bit hash of ``(variable id, subscript,
world index, base seed)``.  Python's builtin ``hash`` is salted per process,
so we implement a small splitmix64-style mixer over a stable encoding
instead.
"""

_MASK64 = (1 << 64) - 1


def _mix64(x):
    """splitmix64 finalizer; good avalanche behaviour, trivially portable."""
    x &= _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def stable_hash64(*parts):
    """Combine ints/strings/floats into a stable 64-bit hash.

    The result depends only on the values supplied, never on process state,
    so sampling is reproducible across runs and machines.
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        if isinstance(part, str):
            for ch in part.encode("utf-8"):
                acc = _mix64(acc ^ ch)
        elif isinstance(part, bool):
            acc = _mix64(acc ^ int(part))
        elif isinstance(part, int):
            acc = _mix64(acc ^ (part & _MASK64) ^ ((part >> 64) & _MASK64))
        elif isinstance(part, float):
            acc = _mix64(acc ^ hash(("f", part)) & _MASK64)
        elif part is None:
            acc = _mix64(acc ^ 0xDEADBEEF)
        else:
            raise TypeError("unhashable seed part: %r" % (part,))
    return acc


def derive_seed(base_seed, *parts):
    """Derive a child seed from a base seed and identifying parts.

    Used to give each (variable, subscript, world) triple its own
    independent-looking but fully deterministic stream.
    """
    return stable_hash64(base_seed, *parts)
