"""Stable cache keys for sample-bank entries.

An entry caches the conditional sample matrix of one minimal independent
subset (a :class:`~repro.constraints.independence.VariableGroup`).  Two
sampling requests may share an entry exactly when they would draw from the
same distribution: same variables (identity *and* parameters), same
constraint predicate, same draw-shaping options, and the same base seed.
All of that is folded into one 64-bit key via
:func:`~repro.util.hashing.stable_hash64`, which also names the on-disk
spill file — so the key must not depend on process state.

Only the options that change *which values are drawn* — or whether a
hopeless group is declared dead — participate in the fingerprint:
window/bounds shaping (``use_cdf_inversion``, ``use_consistency_bounds``),
Metropolis escalation and chain quality (``use_metropolis``,
``metropolis_threshold``, ``metropolis_burn_in``, ``metropolis_thin``,
``metropolis_start_tries``) and the per-call attempt budget
(``max_attempts_per_group``), since a bundle filled or declared impossible
under one escalation regime must not answer for another.
Counting knobs (``n_samples``, ``epsilon``/``delta``, batch sizes) merely
decide how many draws are consumed, which the bundle's incremental top-up
handles.
"""

from repro.symbolic.conditions import Disjunction
from repro.util.hashing import stable_hash64

#: Options that alter the drawn candidates or the impossibility verdict.
STRATEGY_FIELDS = (
    "use_cdf_inversion",
    "use_consistency_bounds",
    "use_metropolis",
    "metropolis_threshold",
    "metropolis_burn_in",
    "metropolis_thin",
    "metropolis_start_tries",
    "max_attempts_per_group",
)


def strategy_fingerprint(options):
    """The draw-shaping slice of a :class:`SamplingOptions`."""
    return tuple(getattr(options, name) for name in STRATEGY_FIELDS)


#: Field types, for round-tripping a fingerprint through float storage
#: (the npz spill meta).  Must stay in STRATEGY_FIELDS order.
_STRATEGY_DECODERS = (bool, bool, bool, float, int, int, int, int)


def decode_strategy(values):
    """Rebuild a fingerprint from its float-encoded spill form."""
    return tuple(decode(v) for decode, v in zip(_STRATEGY_DECODERS, values))


def variable_signature(variable):
    """Identity + distribution of one group variable, as a hashable tuple."""
    return ("var", variable.vid, variable.subscript, variable.dist_name) + tuple(
        float(p) if isinstance(p, (int, float)) else p for p in variable.params
    )


def bundle_key(group, condition, options, base_seed):
    """64-bit cache key for ``group`` sampled under ``condition``.

    For conjunctive conditions the group's own atoms are the acceptance
    predicate, so only they enter the key; for DNF conditions the whole
    disjunction is the predicate (there is a single joint group) and its
    structural key is used instead.
    """
    parts = ["samplebank", base_seed, strategy_fingerprint(options)]
    for variable in group.variables:
        parts.append(variable_signature(variable))
    if isinstance(condition, Disjunction):
        parts.append(("dnf", condition.key()))
    else:
        parts.append(("atoms", tuple(sorted(atom.key() for atom in group.atoms))))
    # One structural tuple, so element-separator mixing applies to every
    # boundary of the key (flat top-level strings would concatenate).
    return stable_hash64(tuple(parts))
