"""Cross-query sample caching (the sample bank).

Turns Section IV-A's independent-group decomposition into a cross-row and
cross-query cache: per-group conditional sample matrices are materialised
once, keyed by a stable hash of (group variables, group condition,
draw-shaping options, base seed), and reused by every expectation /
confidence call that re-derives the same group.  Includes an LRU-bounded
in-memory store with optional on-disk (npz) spill, incremental top-up when
callers need more draws, per-variable dependency tracking for precise
invalidation on table mutations, and hit/miss/eviction statistics surfaced
as ``PIPDatabase.sample_bank.stats()``.
"""

from repro.samplebank.bank import BankedGroupSource, BankStats, SampleBank
from repro.samplebank.bundle import SampleBundle
from repro.samplebank.keys import bundle_key, strategy_fingerprint
from repro.samplebank.store import LRUStore

__all__ = [
    "SampleBank",
    "BankStats",
    "BankedGroupSource",
    "SampleBundle",
    "LRUStore",
    "bundle_key",
    "strategy_fingerprint",
]
