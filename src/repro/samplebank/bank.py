"""The sample bank: cross-row and cross-query conditional sample cache.

PIP's lossless symbolic representation means the expensive part of every
``expected_*`` / ``conf`` call — conditionally sampling each minimal
independent subset — is a pure function of (group variables, group
condition, draw-shaping options, base seed).  The bank exploits that:
:class:`~repro.sampling.expectation.ExpectationEngine` asks it for a
*source* per group, and the bank serves draws out of a persistent
:class:`~repro.samplebank.bundle.SampleBundle`, materialising (or
incrementally topping up) the bundle only on a miss.  Hundreds of result
rows sharing one group — or a monitoring workload re-running the same
query — then pay for sampling once.

Consistency is content-addressed: any change to a group's condition or a
variable's parameters changes the key, so stale hits are impossible.  The
explicit invalidation API exists to bound *staleness of relevance* and
memory: when a table is mutated, entries depending on any of the affected
random variables are dropped (and only those — see
:meth:`SampleBank.invalidate_variables`).
"""

import glob
import json
import os
import threading

from repro.distributions import rng_from_seed
from repro.samplebank.bundle import SampleBundle
from repro.samplebank.keys import STRATEGY_FIELDS, bundle_key, strategy_fingerprint
from repro.samplebank.store import LRUStore
from repro.sampling.samplers import GroupSampleResult, GroupSampler
from repro.util.hashing import derive_seed


class BankStats:
    """Mutable hit/miss/eviction counters, shared with the store."""

    __slots__ = (
        "hits",
        "misses",
        "topups",
        "evictions",
        "spills",
        "disk_loads",
        "invalidated",
        "samples_served",
        "samples_drawn",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return "<BankStats %s>" % (self.as_dict(),)


class BankedGroupSource:
    """Sampler-compatible view over one bundle for one engine call.

    Mirrors the :class:`~repro.sampling.samplers.GroupSampler` surface the
    expectation engine uses (``sample``, ``probability_estimate_or_none``,
    ``estimate_probability``, ``can_estimate_probability``) but serves
    consecutive slices of the cached matrix, extending it on demand.  Each
    engine call gets a fresh source, so every call reads the bundle from
    column 0 — two rows with the same group see the same draws, which is
    exactly the row-dedup the bank exists for.
    """

    __slots__ = ("_bank", "_bundle", "_group", "_consistency", "_predicate", "_options", "_offset")

    def __init__(self, bank, bundle, group, consistency, predicate, options):
        self._bank = bank
        self._bundle = bundle
        self._group = group
        self._consistency = consistency
        self._predicate = predicate
        self._options = options
        self._offset = 0

    @property
    def can_estimate_probability(self):
        """Bundle counters are rejection-only, so always usable for P[K]."""
        return True

    def sample(self, n):
        bundle = self._bundle
        arrays = self._bank.take(
            bundle,
            self._offset,
            n,
            self._group,
            self._consistency,
            self._predicate,
            self._options,
        )
        if arrays is None:
            return GroupSampleResult(
                None, 0, bundle.attempts, bundle.accepted, 0.0, bundle.used_metropolis,
                impossible=True,
            )
        self._offset += n
        return GroupSampleResult(
            arrays, n, bundle.attempts, bundle.accepted, bundle.mass,
            bundle.used_metropolis,
        )

    def probability_estimate_or_none(self):
        return self._bundle.probability_estimate_or_none()

    def estimate_probability(self, n_min):
        return self._bank.ensure_attempts(
            self._bundle,
            n_min,
            self._group,
            self._consistency,
            self._predicate,
            self._options,
        )


class SampleBank:
    """Per-database store of per-group conditional sample bundles."""

    def __init__(self, base_seed=0, capacity=512, spill_dir=None, enabled=True, min_fill=256):
        self.base_seed = base_seed
        self.enabled = enabled
        self.min_fill = min_fill
        self.stats_counters = BankStats()
        # Attached by the owning database; None keeps the bank usable
        # standalone.  Only ever *read* — counting spans never steers
        # sampling, so traced and untraced runs draw identical streams.
        self.telemetry = None
        self._index = {}  # vid -> set of cache keys
        self._key_vids = {}  # cache key -> vids (for O(affected) removal)
        # Guards the store and indices: the parallel scheduler merges
        # worker payloads from the querying thread, but a future async
        # serving layer may not be so polite.  Queries sample inside the
        # lock — the bank is single-writer by design, the lock just makes
        # that design a guarantee instead of a convention.
        self._lock = threading.RLock()
        # Keys materialised by the parallel prefetch whose first lookup
        # should count as the miss serial execution would have recorded.
        self._prefetched = set()
        self._store = LRUStore(
            capacity,
            spill_dir=spill_dir,
            stats=self.stats_counters,
            on_drop=self._forget_key,
            on_load=self._register_bundle,
        )

    @classmethod
    def from_options(cls, options, base_seed=0):
        """Build a bank as configured by a :class:`SamplingOptions`."""
        return cls(
            base_seed=base_seed,
            capacity=options.bank_capacity,
            spill_dir=options.bank_spill_dir,
            enabled=options.use_sample_bank,
        )

    # -- engine-facing API -------------------------------------------------------

    def _count(self, name, n=1):
        """Bump a tracing counter on the active span, if anyone listens."""
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.tracer.count(name, n)

    @property
    def hit_rate(self):
        """Lookup hit rate ``hits / (hits + misses)``; ``None`` before any
        lookup (0/0 is *no data*, not a 0% cache)."""
        hits = self.stats_counters.hits
        lookups = hits + self.stats_counters.misses
        return (hits / lookups) if lookups else None

    def source(self, group, condition, consistency, predicate, options):
        """A fresh per-call sampler view over the (possibly new) bundle."""
        with self._lock:
            key = bundle_key(group, condition, options, self.base_seed)
            bundle = self._store.get(key)
            if bundle is None:
                self.stats_counters.misses += 1
                self._count("bank.miss")
                bundle = SampleBundle(
                    key,
                    vids=(variable.vid for variable in group.variables),
                    seed=derive_seed(self.base_seed, "samplebank", key),
                    strategy=strategy_fingerprint(options),
                )
                self._store.put(key, bundle)
                self._register_bundle(key, bundle)
            elif key in self._prefetched:
                # A worker materialised this bundle moments ago; serial
                # execution would have recorded its own first touch as the
                # miss, so the stats stay comparable across modes.
                self._prefetched.discard(key)
                self.stats_counters.misses += 1
                self._count("bank.miss")
            else:
                self.stats_counters.hits += 1
                self._count("bank.hit")
            return BankedGroupSource(self, bundle, group, consistency, predicate, options)

    # -- parallel prefetch -------------------------------------------------------

    @property
    def prefetch_limit(self):
        """How many bundles one prefetch batch may materialise.

        Prefetched bundles must survive in the LRU until the serial loop
        consumes them; beyond ``capacity - 1`` the puts of later groups
        start evicting prefetched-but-unread bundles, turning parallel
        pre-materialisation into duplicated work.  Statements with more
        groups than this sample the overflow serially — exactly what the
        serial path would have done for them anyway.
        """
        return max(1, self._store.capacity - 1)

    def plan_group_job(self, group, condition, consistency, options,
                       fill_n=0, min_attempts=0):
        """A :class:`~repro.parallel.jobs.GroupJob` for a missing bundle.

        Returns ``None`` when the bundle is already cached (in memory or
        spilled).  The existence probe neither promotes nor loads, so
        planning leaves LRU state exactly as the serial touches will find
        it.  ``fill_n`` is floored to ``min_fill`` here so the worker
        draws the same count :meth:`_extend` would.
        """
        from repro.parallel.jobs import GroupJob
        from repro.symbolic.conditions import Disjunction

        with self._lock:
            key = bundle_key(group, condition, options, self.base_seed)
            if self._store.contains(key):
                return None
            return GroupJob(
                key,
                derive_seed(self.base_seed, "samplebank", key),
                group,
                consistency.bounds,
                options,
                fill_n=max(fill_n, self.min_fill) if fill_n else 0,
                min_attempts=min_attempts,
                dnf_condition=condition if isinstance(condition, Disjunction) else None,
            )

    def merge_payload(self, job, payload):
        """Fold one worker payload into the bank (single-writer merge).

        Creates the bundle exactly as the serial first touch would have —
        same key, seed, strategy snapshot, counters — and counts the drawn
        samples once.  Returns False when the key landed in the store in
        the meantime (the existing bundle wins; determinism makes both
        byte-identical anyway).
        """
        with self._lock:
            if self._store.contains(job.key):
                return False
            bundle = SampleBundle(
                job.key,
                vids=job.vids,
                seed=job.seed,
                strategy=strategy_fingerprint(job.options),
            )
            if job.fill_n:
                bundle.absorb(
                    GroupSampleResult(
                        payload.arrays,
                        payload.n,
                        payload.attempts,
                        payload.accepted,
                        payload.mass,
                        payload.used_metropolis,
                        impossible=payload.impossible,
                    )
                )
                if not payload.impossible:
                    self.stats_counters.samples_drawn += payload.n
            elif payload.impossible:
                bundle.mark_impossible()
                bundle.attempts = max(bundle.attempts, payload.attempts)
            else:
                bundle.attempts = payload.attempts
                bundle.accepted = payload.accepted
                bundle.mass = payload.mass
                bundle.dirty = True
                self.stats_counters.samples_drawn += payload.attempts
            self._store.put(job.key, bundle)
            self._register_bundle(job.key, bundle)
            self._prefetched.add(job.key)
            return True

    def _register_bundle(self, key, bundle):
        """Record the bundle's variable dependencies for invalidation.

        Runs on creation and on disk reload (a spill dir can outlive the
        process that wrote it); index entries outlive in-memory eviction
        and are only removed when the bundle leaves both tiers, at which
        point the next request is a miss again.
        """
        self._key_vids[key] = bundle.vids
        for vid in bundle.vids:
            self._index.setdefault(vid, set()).add(key)

    def take(self, bundle, offset, n, group, consistency, predicate, options):
        """Columns ``[offset, offset+n)`` of the bundle, topping up if short.

        Returns the arrays dict, or ``None`` when the group carries no
        probability mass.
        """
        with self._lock:
            if bundle.impossible:
                return None
            end = offset + n
            if end > bundle.n:
                self._extend(bundle, end, group, consistency, predicate, options)
                if bundle.impossible:
                    return None
            self.stats_counters.samples_served += n
            self._count("samples.served", n)
            return bundle.slice(offset, end)

    def ensure_attempts(self, bundle, n_min, group, consistency, predicate, options):
        """Drive rejection trials to at least ``n_min``; return ``P[K]``.

        Metropolis never runs here (it yields no acceptance rate —
        Algorithm 4.3 line 34), so the counters stay probability-grade.
        """
        with self._lock:
            if bundle.impossible:
                return 0.0
            if bundle.attempts < n_min:
                # GroupSampler.estimate_probability is a pure rejection loop
                # (it never escalates), so no option surgery is needed here.
                sampler = self._sampler(
                    bundle,
                    group,
                    consistency,
                    predicate,
                    options,
                    rng_tag=("prob", bundle.attempts),
                )
                if sampler.impossible:
                    bundle.mark_impossible()
                    return 0.0
                before = bundle.attempts
                estimate = sampler.estimate_probability(n_min)
                bundle.attempts = sampler.attempts
                bundle.accepted = sampler.accepted
                bundle.mass = sampler.mass
                bundle.dirty = True
                self.stats_counters.samples_drawn += bundle.attempts - before
                return estimate
            return bundle.probability_estimate_or_none()

    # -- bundle materialisation --------------------------------------------------

    def _extend(self, bundle, target_n, group, consistency, predicate, options):
        """Grow the bundle to at least ``target_n`` conditional samples.

        Growth at least doubles (with a floor of ``min_fill``) so a
        sequence of escalating requests costs O(log) sampler runs.
        """
        grown = max(target_n, 2 * bundle.n, self.min_fill)
        n_more = grown - bundle.n
        sampler = self._sampler(
            bundle,
            group,
            consistency,
            predicate,
            options,
            rng_tag=("draws", bundle.n),
        )
        if sampler.impossible:
            bundle.mark_impossible()
            return
        result = sampler.sample(n_more)
        if bundle.n:
            self.stats_counters.topups += 1
            self._count("bank.topup")
        if not result.impossible:
            self.stats_counters.samples_drawn += result.n
            self._count("samples.drawn", result.n)
        bundle.absorb(result)

    def _sampler(self, bundle, group, consistency, predicate, options, rng_tag):
        """A GroupSampler resuming this bundle's deterministic stream.

        The bundle's strategy snapshot overrides the caller's draw-shaping
        flags so mass bookkeeping stays consistent across top-ups; the
        rejection counters are seeded from the bundle so escalation logic
        remembers how hostile the constraint has been.
        """
        overrides = dict(zip(STRATEGY_FIELDS, bundle.strategy))
        rng = rng_from_seed(derive_seed(bundle.seed, *rng_tag))
        return GroupSampler(
            group,
            consistency.bounds,
            predicate,
            rng,
            options.replace(**overrides),
            initial_attempts=bundle.attempts,
            initial_accepted=bundle.accepted,
        )

    # -- invalidation -------------------------------------------------------------

    def invalidate_variables(self, variables):
        """Drop exactly the entries depending on any of ``variables``.

        ``variables`` may be :class:`RandomVariable` instances or raw vids.
        Returns the number of entries removed (memory and spill alike).
        """
        with self._lock:
            vids = {getattr(v, "vid", v) for v in variables}
            doomed = set()
            for vid in vids:
                doomed |= self._index.pop(vid, set())
            if not doomed:
                # The common case on insert-heavy load paths: the new row's
                # variables have no cached entries.
                return 0
            for key in doomed:
                self._store.discard(key)
                self._prefetched.discard(key)
                # Each doomed entry knows its own vids, so cleanup touches only
                # the affected index sets, not the whole index.
                for vid in self._key_vids.pop(key, ()):
                    keys = self._index.get(vid)
                    if keys is not None:
                        keys.discard(key)
                        if not keys:
                            del self._index[vid]
            self.stats_counters.invalidated += len(doomed)
            return len(doomed)

    # -- persistence ---------------------------------------------------------------

    MANIFEST_NAME = "manifest.json"

    def flush(self):
        """Persist the bank: spill every in-memory bundle, write a manifest.

        Called by a durable database's ``close()``/``checkpoint()``.  The
        manifest records the bank's identity (base seed) and footprint so
        tooling — and the warm-restart tests — can verify what a restart
        will find without loading any bundle.  A bank with no spill dir
        flushes nowhere and returns 0.
        """
        with self._lock:
            spill_dir = self._store.spill_dir
            if spill_dir is None:
                return 0
            flushed = self._store.flush_all()
            on_disk = len(glob.glob(os.path.join(spill_dir, "bank_*.npz")))
            manifest = {
                "format": 1,
                "base_seed": self.base_seed,
                "capacity": self._store.capacity,
                "bundles_on_disk": on_disk,
            }
            os.makedirs(spill_dir, exist_ok=True)
            path = os.path.join(spill_dir, self.MANIFEST_NAME)
            tmp_path = path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            return flushed

    def manifest(self):
        """The persisted manifest dict, or ``None`` when absent."""
        spill_dir = self._store.spill_dir
        if spill_dir is None:
            return None
        path = os.path.join(spill_dir, self.MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def clear(self):
        """Drop every entry (both tiers, including spilled-only bundles)."""
        with self._lock:
            count = self._store.clear()
            self._index.clear()
            self._key_vids.clear()
            self._prefetched.clear()
            self.stats_counters.invalidated += count
            return count

    def _forget_key(self, key, bundle):
        """Store callback: an entry left both tiers via LRU eviction.

        The victim carries its own vids, so only those index sets are
        touched (not a sweep of the whole index per eviction)."""
        self._key_vids.pop(key, None)
        # An evicted-unspilled bundle may have been prefetched but never
        # looked up; a later recreation's lookups must count normally.
        self._prefetched.discard(key)
        for vid in bundle.vids:
            keys = self._index.get(vid)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._index[vid]

    # -- introspection ------------------------------------------------------------

    def entries(self):
        """(key, vids, n_samples) for every in-memory entry (tests/debug).

        Reads the store snapshot directly — no LRU promotion, no disk
        loads — so introspection never perturbs cache state.
        """
        with self._lock:
            return [
                (key, set(bundle.vids), bundle.n)
                for key, bundle in self._store.items()
            ]

    def stats(self):
        """Hit/miss/top-up/eviction counters plus live footprint.

        Returns
        -------
        dict
            ``hits``/``misses`` — bundle lookups served from / added to the
            cache; ``topups`` — incremental extensions of cached bundles;
            ``evictions``/``spills``/``disk_loads`` — LRU and spill-tier
            traffic; ``invalidated`` — entries dropped by mutation hooks;
            ``samples_served``/``samples_drawn`` — conditional samples
            handed to queries vs freshly materialised (their ratio is the
            bank's amplification); ``entries``/``bytes_in_memory`` — live
            in-memory footprint; ``hit_rate`` — :attr:`hit_rate` (``None``
            before any lookup).

        Example
        -------
        >>> from repro import PIPDatabase
        >>> db = PIPDatabase(seed=0)
        >>> sorted(db.sample_bank.stats())[:4]
        ['bytes_in_memory', 'disk_loads', 'entries', 'evictions']
        >>> db.sample_bank.stats()["hit_rate"] is None   # no lookups yet
        True
        """
        with self._lock:
            out = self.stats_counters.as_dict()
            out["entries"] = len(self._store)
            out["bytes_in_memory"] = self._store.bytes_in_memory()
            out["hit_rate"] = self.hit_rate
            return out

    def __repr__(self):
        return "<SampleBank %d entries, hits=%d misses=%d>" % (
            len(self._store),
            self.stats_counters.hits,
            self.stats_counters.misses,
        )
