"""The unit of caching: one group's conditional sample matrix.

A bundle owns everything needed to answer repeated sampling requests for
one (group, condition) pair without touching the underlying rejection /
CDF-inversion machinery again:

* ``arrays`` — variable key -> float ndarray of conditional draws, all the
  same length ``n``;
* ``attempts`` / ``accepted`` — rejection-trial bookkeeping (metropolis-free
  by construction, see :mod:`repro.sampling.samplers`), so ``P[K] = mass ×
  accepted/attempts`` keeps working from cache;
* ``mass`` — the CDF-window mass of the group's restricted candidate draws;
* ``used_metropolis`` / ``impossible`` — escalation outcomes, cached so a
  provably-dead group never re-runs its hopeless rejection loop;
* ``strategy`` — the draw-shaping options snapshot the bundle was built
  with; top-ups must reuse it or the mass bookkeeping would be corrupted.

Bundles are deterministic: the draw stream derives from ``seed`` (itself
derived from the cache key and base seed) and each top-up continues from a
seed derived from the current length, so two same-seed databases running
the same workload materialise identical bundles.
"""

import numpy as np


class SampleBundle:
    """Cached conditional samples for one independent group."""

    __slots__ = (
        "key",
        "vids",
        "seed",
        "arrays",
        "n",
        "attempts",
        "accepted",
        "mass",
        "used_metropolis",
        "impossible",
        "strategy",
        "topups",
        "dirty",
    )

    def __init__(self, key, vids, seed, strategy):
        self.key = key
        self.vids = frozenset(vids)
        self.seed = seed
        self.arrays = {}
        self.n = 0
        self.attempts = 0
        self.accepted = 0
        self.mass = 1.0
        self.used_metropolis = False
        self.impossible = False
        self.strategy = tuple(strategy)
        self.topups = 0
        # Spill bookkeeping: False while the on-disk copy is current, so
        # re-evicting an unchanged bundle skips the npz rewrite.
        self.dirty = True

    @property
    def nbytes(self):
        """Approximate in-memory footprint of the sample matrix."""
        return sum(a.nbytes for a in self.arrays.values())

    def mark_impossible(self):
        """Record that the group carries no probability mass; drop samples."""
        self.impossible = True
        self.arrays = {}
        self.n = 0
        self.mass = 0.0
        self.dirty = True

    def slice(self, start, stop):
        """Column slice ``[start:stop)`` of the sample matrix (views)."""
        return {key: array[start:stop] for key, array in self.arrays.items()}

    def absorb(self, result):
        """Fold a :class:`GroupSampleResult` of fresh draws into the bundle.

        ``result.attempts``/``accepted`` are cumulative (the sampler was
        seeded with this bundle's counters), so they overwrite rather than
        add.
        """
        if result.impossible:
            self.attempts = max(self.attempts, result.attempts)
            self.mark_impossible()
            return
        if self.n:
            self.topups += 1
            self.arrays = {
                key: np.concatenate((self.arrays[key], result.arrays[key]))
                for key in self.arrays
            }
        else:
            self.arrays = {
                key: np.asarray(array, dtype=float)
                for key, array in result.arrays.items()
            }
        self.n += result.n
        self.attempts = result.attempts
        self.accepted = result.accepted
        self.mass = result.mass
        self.used_metropolis = self.used_metropolis or result.used_metropolis
        self.dirty = True

    def probability_estimate_or_none(self):
        """``mass × acceptance`` from cached bookkeeping, if any trials ran."""
        if self.impossible:
            return 0.0
        if self.attempts == 0:
            return None
        return self.mass * (self.accepted / self.attempts)

    def __repr__(self):
        state = "impossible" if self.impossible else "n=%d" % self.n
        return "<SampleBundle %016x %s attempts=%d>" % (
            self.key,
            state,
            self.attempts,
        )
