"""LRU-bounded bundle storage with optional on-disk spill.

The in-memory tier is a plain ordered dict capped at ``capacity`` entries;
the least-recently-used bundle is evicted when a new one would overflow.
With a ``spill_dir`` configured, evicted bundles are written as compressed
``.npz`` files named by their 64-bit cache key and transparently reloaded
(and re-promoted to memory) on the next request — the "materialize once,
analyze many" tier for monitoring workloads whose working set outgrows RAM.

The store knows nothing about groups or invalidation; the bank drives both
through :meth:`get`/:meth:`put`/:meth:`discard`.
"""

import glob
import os
from collections import OrderedDict

import numpy as np

from repro.samplebank.bundle import SampleBundle
from repro.samplebank.keys import decode_strategy

_SPILL_PREFIX = "bank_"
_SPILL_SUFFIX = ".npz"


class LRUStore:
    """Two-tier (memory + optional disk) bundle store."""

    def __init__(self, capacity, spill_dir=None, stats=None, on_drop=None, on_load=None):
        if capacity < 1:
            raise ValueError("sample-bank capacity must be >= 1")
        self.capacity = capacity
        self.spill_dir = spill_dir
        self.stats = stats
        self.on_drop = on_drop
        self.on_load = on_load
        self._entries = OrderedDict()

    # -- basic map behaviour ---------------------------------------------------

    def __len__(self):
        return len(self._entries)

    def keys(self):
        return list(self._entries)

    def items(self):
        """Snapshot of in-memory entries, without LRU promotion."""
        return list(self._entries.items())

    def contains(self, key):
        """Whether the key is retrievable from either tier.

        A pure probe: no LRU promotion, no disk load — the parallel
        prefetch planner uses it so that planning leaves cache state
        exactly as the serial touches will find it.
        """
        if key in self._entries:
            return True
        path = self._path(key)
        return path is not None and os.path.exists(path)

    def bytes_in_memory(self):
        return sum(bundle.nbytes for bundle in self._entries.values())

    def get(self, key):
        """Fetch a bundle, promoting it to most-recently-used.

        Falls back to the spill tier; a reloaded bundle re-enters memory
        (possibly evicting something else).
        """
        bundle = self._entries.get(key)
        if bundle is not None:
            self._entries.move_to_end(key)
            return bundle
        bundle = self._load(key)
        if bundle is not None:
            if self.stats is not None:
                self.stats.disk_loads += 1
            self.put(key, bundle)
            if self.on_load is not None:
                # A bundle can enter this store from a spill dir written by
                # an earlier process; the owner must (re)learn its deps.
                self.on_load(key, bundle)
        return bundle

    def put(self, key, bundle):
        self._entries[key] = bundle
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            victim_key, victim = self._entries.popitem(last=False)
            if self.stats is not None:
                self.stats.evictions += 1
            spilled = self._spill(victim_key, victim)
            if not spilled and self.on_drop is not None:
                self.on_drop(victim_key, victim)

    def flush_all(self):
        """Spill every in-memory bundle to the disk tier (no eviction).

        The durable-database close/checkpoint path: after a flush, every
        cached bundle is retrievable by a future process, so a restart
        warm-starts the bank instead of re-sampling.  Bundles already
        clean on disk are skipped (``_spill`` is incremental).  Returns
        how many bundles are now retrievable from disk; without a spill
        dir this is a no-op returning 0.
        """
        if self.spill_dir is None:
            return 0
        flushed = 0
        for key, bundle in self._entries.items():
            if self._spill(key, bundle):
                flushed += 1
        return flushed

    def discard(self, key):
        """Remove an entry from both tiers (invalidation path)."""
        self._entries.pop(key, None)
        path = self._path(key)
        if path is not None and os.path.exists(path):
            os.remove(path)

    def clear(self):
        """Drop both tiers entirely; returns how many entries were removed.

        The spill dir is assumed private to this store (one per database),
        so every ``bank_*.npz`` in it is fair game — including bundles that
        were evicted from memory long ago.
        """
        removed = len(self._entries)
        resident_paths = {self._path(key) for key in self._entries}
        self._entries.clear()
        if self.spill_dir is not None and os.path.isdir(self.spill_dir):
            pattern = os.path.join(
                self.spill_dir, _SPILL_PREFIX + "*" + _SPILL_SUFFIX
            )
            for path in glob.glob(pattern):
                os.remove(path)
                if path not in resident_paths:  # don't double-count clean copies
                    removed += 1
        return removed

    # -- spill tier ---------------------------------------------------------------

    def _path(self, key):
        if self.spill_dir is None:
            return None
        return os.path.join(
            self.spill_dir, "%s%016x%s" % (_SPILL_PREFIX, key, _SPILL_SUFFIX)
        )

    def _spill(self, key, bundle):
        """Write a bundle to disk; returns whether it remains retrievable."""
        path = self._path(key)
        if path is None:
            return False
        if not bundle.dirty and os.path.exists(path):
            return True  # the on-disk copy is already current
        os.makedirs(self.spill_dir, exist_ok=True)
        payload = {
            "meta": np.asarray(
                [
                    bundle.n,
                    bundle.attempts,
                    bundle.accepted,
                    bundle.mass,
                    1.0 if bundle.used_metropolis else 0.0,
                    1.0 if bundle.impossible else 0.0,
                    bundle.topups,
                ]
                + [float(value) for value in bundle.strategy],
                dtype=np.float64,
            ),
            "seed": np.asarray([bundle.seed], dtype=np.uint64),
            "vids": np.asarray(sorted(bundle.vids), dtype=np.int64),
        }
        for (vid, subscript), array in bundle.arrays.items():
            payload["a%d_%d" % (vid, subscript)] = array
        # Write-then-rename so a crash mid-spill can't leave a truncated
        # npz at the final path (a corrupt cache file would otherwise fail
        # every later query for this key).
        tmp_path = path + ".tmp"
        try:
            with open(tmp_path, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_path, path)
        except OSError:
            # Disk full or unwritable: the bundle simply isn't retrievable.
            for leftover in (tmp_path,):
                if os.path.exists(leftover):
                    os.remove(leftover)
            return False
        bundle.dirty = False
        if self.stats is not None:
            self.stats.spills += 1
        return True

    def _load(self, key):
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            return self._read(key, path)
        except Exception:
            # A corrupt or truncated spill file (crash mid-write on an older
            # layout, manual tampering) must degrade to a cache miss, not a
            # permanent query failure.  Drop it so it is re-materialised.
            os.remove(path)
            return None

    def _read(self, key, path):
        with np.load(path) as data:
            meta = data["meta"]
            strategy = decode_strategy(meta[7:])
            bundle = SampleBundle(
                key,
                vids=[int(v) for v in data["vids"]],
                seed=int(data["seed"][0]),
                strategy=strategy,
            )
            bundle.n = int(meta[0])
            bundle.attempts = int(meta[1])
            bundle.accepted = int(meta[2])
            bundle.mass = float(meta[3])
            bundle.used_metropolis = bool(meta[4])
            bundle.impossible = bool(meta[5])
            bundle.topups = int(meta[6])
            arrays = {}
            for name in data.files:
                if not name.startswith("a"):
                    continue
                vid, _sep, subscript = name[1:].partition("_")
                arrays[(int(vid), int(subscript))] = np.asarray(
                    data[name], dtype=float
                )
            bundle.arrays = arrays
            bundle.dirty = False
        return bundle
