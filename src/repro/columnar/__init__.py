"""Vectorized columnar execution for deterministic hot paths (ROADMAP 2).

The plan interpreter of :mod:`repro.engine.executor` evaluates predicates
and projections row-at-a-time in Python; for the deterministic part of a
c-table that is pure interpreter overhead.  This package stores each
table's deterministic rows as contiguous numpy arrays behind a
:class:`~repro.columnar.columns.ColumnStore` and gives the executor batch
operators — filter → boolean mask, project → column slice, aggregate →
scalar kernel, group-by → sort-based keying — that fall back to the
symbolic row path, per operator, whenever a c-table condition or symbolic
cell is actually involved.

The contract is **bit-identity**: every vectorized path must produce
exactly the rows, row order, conditions, estimates and bank activity the
row interpreter produces (``tests/differential/`` proves it).  Anything a
kernel cannot replicate bit-for-bit is not vectorized — it returns
``None`` and the executor runs the row path.

See ``docs/columnar.md`` for the column store, the fallback rule, and
zone-map / Bloom-filter scan pruning.
"""

from repro.columnar.bloom import BloomFilter
from repro.columnar.columns import DEFAULT_CHUNK, ColumnStore, store_for

__all__ = ["BloomFilter", "ColumnStore", "DEFAULT_CHUNK", "store_for"]
