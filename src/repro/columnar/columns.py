"""The :class:`ColumnStore`: contiguous columns over a c-table's
deterministic rows.

A store is built lazily per table and cached on ``CTable.colstore``;
:func:`store_for` validates the cache against the table's row list
identity, row count and mutation ``version``, and additionally registers
a CTable watcher hook that drops the cache on any ``add_row`` /
``update_rows`` / ``remove_rows`` — so the columnar view can never serve
stale data after a mutation.

The store partitions rows into the **deterministic partition** (rows
whose condition is TRUE) and the **symbolic remainder**; only the former
is columnised.  Per column it caches, on demand:

* the full object column (all rows — used by projection and the snapshot
  packer),
* a ``float64`` array over the deterministic partition, built only when
  every cell is a non-bool int/float **and** every int survives the
  round trip ``float(v) == v`` (so float64 comparisons agree bit-for-bit
  with Python's exact int/float comparisons),
* per-chunk zone maps ``(min, max, has_nan)`` and lazy per-chunk
  :class:`~repro.columnar.bloom.BloomFilter`\\ s for scan pruning.

Chunks are ``DEFAULT_CHUNK`` deterministic rows; tests shrink the chunk
size to force boundary behaviour.
"""

import numpy as np

from repro.columnar.bloom import BloomFilter
from repro.symbolic.expression import Expression

#: Deterministic rows per chunk (zone map / Bloom granularity).
DEFAULT_CHUNK = 4096


def _invalidate_store(table, _row):
    """CTable watcher hook: any mutation drops the cached column store."""
    table.colstore = None


def store_for(table, chunk_size=None):
    """The table's cached :class:`ColumnStore`, (re)built when stale.

    Returns ``None`` for objects without the ``colstore`` slot (plain
    mocks in tests); otherwise always returns a store valid for the
    table's current rows.
    """
    if not hasattr(table, "colstore"):
        return None
    store = table.colstore
    if (
        store is not None
        and store.rows_ref is table.rows
        and store.n_rows == len(table.rows)
        and store.version == table.version
        and (chunk_size is None or store.chunk_size == chunk_size)
    ):
        return store
    store = ColumnStore(table, chunk_size=chunk_size)
    table.colstore = store
    if _invalidate_store not in table.watchers:
        table.watchers.append(_invalidate_store)
    return store


class ColumnStore:
    """Columnar view of one c-table (see module docstring)."""

    __slots__ = (
        "schema_names",
        "rows_ref",
        "n_rows",
        "version",
        "chunk_size",
        "det_flags",
        "det_rows",
        "all_det",
        "_name_index",
        "_objects",
        "_det_clean",
        "_numeric",
        "_zones",
        "_blooms",
    )

    def __init__(self, table, chunk_size=None):
        self.schema_names = list(table.schema.names)
        self.rows_ref = table.rows
        self.n_rows = len(table.rows)
        self.version = getattr(table, "version", 0)
        self.chunk_size = chunk_size or DEFAULT_CHUNK
        flags = [row.condition.is_true for row in table.rows]
        self.det_flags = flags
        self.det_rows = [row for row, det in zip(table.rows, flags) if det]
        self.all_det = len(self.det_rows) == self.n_rows
        # Mirrors dict(zip(names, values)): for duplicate column names the
        # last occurrence wins, exactly like CTable.row_mapping.
        self._name_index = {name: i for i, name in enumerate(self.schema_names)}
        self._objects = {}
        self._det_clean = {}
        self._numeric = {}
        self._zones = {}
        self._blooms = {}

    # -- name resolution ---------------------------------------------------------

    def resolve(self, name):
        """Column index for ``name`` under ColumnTerm.bind_columns
        semantics (exact → qualified-suffix → unique-suffix), or ``None``
        when the row path would fail or be ambiguous (caller falls back,
        and the row path raises the authoritative error)."""
        index = self._name_index.get(name)
        if index is not None:
            return index
        if "." in name:
            suffix = name.split(".")[-1]
            index = self._name_index.get(suffix)
            if index is not None:
                return index
        matches = [
            key for key in self._name_index if key.split(".")[-1] == name
        ]
        if len(matches) == 1:
            return self._name_index[matches[0]]
        return None

    # -- columns -----------------------------------------------------------------

    def objects(self, index):
        """The full object column (all rows, symbolic remainder included)."""
        column = self._objects.get(index)
        if column is None:
            column = [row.values[index] for row in self.rows_ref]
            self._objects[index] = column
        return column

    def det_objects(self, index):
        """Deterministic-partition cells, only when none is symbolic
        (an Expression cell makes the row path treat the atom as
        symbolic, which no batch comparison can replicate)."""
        cached = self._det_clean.get(index)
        if cached is not None:
            return cached if cached is not False else None
        column = [row.values[index] for row in self.det_rows]
        for value in column:
            if isinstance(value, Expression):
                self._det_clean[index] = False
                return None
        self._det_clean[index] = column
        return column

    def numeric(self, index):
        """``(float64_array, all_float)`` over the deterministic
        partition, or ``None`` when float64 cannot represent the column
        exactly.  ``all_float`` gates arithmetic vectorization: Python
        int arithmetic is exact where float64 rounds, so only all-float
        columns may enter vectorized ``+ - *``."""
        cached = self._numeric.get(index)
        if cached is not None:
            return cached if cached is not False else None
        values = self.det_objects(index)
        if values is None:
            self._numeric[index] = False
            return None
        floats = []
        all_float = True
        for value in values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self._numeric[index] = False
                return None
            if isinstance(value, int):
                all_float = False
                try:
                    as_float = float(value)
                except OverflowError:
                    self._numeric[index] = False
                    return None
                if as_float != value:  # beyond 2**53: float64 would lie
                    self._numeric[index] = False
                    return None
                floats.append(as_float)
            else:
                floats.append(value)
        result = (np.asarray(floats, dtype=np.float64), all_float)
        self._numeric[index] = result
        return result

    # -- chunks / pruning --------------------------------------------------------

    def chunks(self):
        """``(chunk_index, start, end)`` spans over the deterministic rows."""
        size = self.chunk_size
        total = len(self.det_rows)
        return [
            (ci, start, min(start + size, total))
            for ci, start in enumerate(range(0, total, size))
        ]

    def zones(self, index):
        """Per-chunk ``(min, max, has_nan)`` zone maps for a numeric
        column; ``(None, None, True)`` marks an all-NaN chunk."""
        zones = self._zones.get(index)
        if zones is not None:
            return zones
        array = self.numeric(index)[0]
        zones = []
        for _ci, start, end in self.chunks():
            block = array[start:end]
            nan_mask = np.isnan(block)
            if nan_mask.all():
                zones.append((None, None, True))
            else:
                clean = block[~nan_mask]
                zones.append(
                    (float(clean.min()), float(clean.max()), bool(nan_mask.any()))
                )
        self._zones[index] = zones
        return zones

    def bloom(self, index, chunk_index, start, end):
        """The lazily-built Bloom filter over one chunk of one column."""
        key = (index, chunk_index)
        cached = self._blooms.get(key)
        if cached is None:
            values = self.det_objects(index)
            cached = BloomFilter(values[start:end])
            self._blooms[key] = cached
        return cached
