"""A small Bloom filter for per-chunk equality pruning.

One filter summarises the values of one column chunk; an equality scan
probes it before touching the chunk.  ``might_contain`` has no false
negatives (a chunk holding the probe value is never pruned) and a
tunable false-positive rate (~1–3% at the default 10 bits/value, k=4).

Membership is keyed on Python's ``hash()``, which respects numeric
equality classes (``hash(2) == hash(2.0)``), so an ``int`` cell matches a
``float`` probe exactly as Python ``==`` would.  The bit array is a plain
Python int used as a bitset — no allocation per probe, arbitrary size.
"""

_U64 = 0xFFFFFFFFFFFFFFFF


class BloomFilter:
    """Immutable-after-build Bloom filter over a batch of hashable values."""

    __slots__ = ("bits", "mask", "k")

    def __init__(self, values, bits_per_value=10, k=4):
        n = max(1, len(values) if hasattr(values, "__len__") else 1)
        size = 64
        while size < n * bits_per_value:
            size <<= 1
        self.mask = size - 1
        self.k = k
        bits = 0
        for value in values:
            for index in self._indices(value):
                bits |= 1 << index
        self.bits = bits

    def _indices(self, value):
        # splitmix64-style avalanche over hash(value): k successive mixes
        # give k near-independent bit positions.
        h = hash(value) & _U64
        for _ in range(self.k):
            h = (h ^ (h >> 33)) * 0xFF51AFD7ED558CCD & _U64
            h = (h ^ (h >> 29)) * 0xC4CEB9FE1A85EC53 & _U64
            h ^= h >> 32
            yield h & self.mask

    def might_contain(self, value):
        """False only when ``value`` is definitely absent from the batch."""
        try:
            return all((self.bits >> index) & 1 for index in self._indices(value))
        except TypeError:
            return True  # unhashable probe: never prune on its account

    @property
    def n_bits(self):
        return self.mask + 1

    def __repr__(self):
        return "<BloomFilter m=%d k=%d>" % (self.n_bits, self.k)
