"""Vectorized aggregate kernels for fully deterministic partitions.

Each kernel replays the exact arithmetic of its row-path counterpart in
:mod:`repro.core.operators` for the special case where **every** row's
condition is TRUE and the target is a bare column of float64-exact
numbers.  In that case the engine's per-row ``expectation``/``_conf``
calls are all exact (probability 1.0, zero samples, no bank traffic), so
the operator loops collapse to closed forms — but the *flags* they
return (``exact``, ``method``, ``n_samples``) and every IEEE rounding
step are preserved literally:

* ``expected_sum`` skips NaN means and adds ``mean * 1.0`` sequentially
  (``np.cumsum`` is a left-to-right float64 scan — the same additions in
  the same order as the Python loop).
* ``expected_max`` transcribes the sorted-scan loop including its early
  exit: with probability-1 rows ``none_before`` hits 0.0 after the first
  scanned row, so the scan stops at the second — leaving ``exact`` False
  for multi-row tables, exactly as the row path reports it.  Non-finite
  values fall back (``0.0 * inf`` is NaN and changes the exit test).
* ``expected_min`` negates through ``0.0 - v`` — the fold of
  ``as_expression(0) - expr`` the row path performs — not unary minus,
  which differs on signed zeros.

``try_aggregate`` returns ``None`` whenever any gate fails; the executor
then runs the row-path operator, which also owns all error raising.
"""

import math

import numpy as np

from repro.columnar import columns as C
from repro.core.operators import AggregateResult
from repro.symbolic.expression import ColumnTerm, as_expression, col

_KINDS = (
    "expected_sum",
    "expected_count",
    "expected_avg",
    "expected_max",
    "expected_min",
)


def try_aggregate(db, table, spec):
    """An :class:`AggregateResult` bit-identical to the row path, or
    ``None`` to fall back (symbolic rows, non-column targets, columns
    float64 cannot represent, non-finite values for max/min)."""
    if spec.kind not in _KINDS:
        return None
    store = C.store_for(table)
    if store is None or not store.all_det:
        return None
    if spec.kind == "expected_count":
        return _count(table)
    array = _target_array(store, table, spec.expr)
    if array is None:
        return None
    if spec.kind == "expected_sum":
        return _sum(table, array)
    if spec.kind == "expected_avg":
        return _avg(table, array)
    if not np.isfinite(array).all():
        return None
    if spec.kind == "expected_max":
        return _sorted_scan(len(table.rows), array.tolist(), 0.0)
    negated = _sorted_scan(
        len(table.rows), (0.0 - array).tolist(), -0.0
    )
    return AggregateResult(
        -negated.value,
        negated.n_rows,
        negated.n_samples,
        negated.exact,
        negated.method,
    )


def _target_array(store, table, target):
    """float64 column for the aggregate target — bare column names only
    (anything else re-enters expression binding on the row path)."""
    expr = col(target) if isinstance(target, str) else as_expression(target)
    if not isinstance(expr, ColumnTerm):
        return None
    index = store.resolve(expr.name)
    if index is None:
        return None
    numeric = store.numeric(index)
    if numeric is None:
        return None
    return numeric[0]


def _count(table):
    # Σ P[φ] with every φ TRUE: n additions of exactly 1.0.
    n = len(table.rows)
    return AggregateResult(float(n), n, 0, True, "conf-sum")


def _sum(table, array):
    values = array[~np.isnan(array)]  # is_nan means are skipped, not summed
    total = float(np.cumsum(np.concatenate(([0.0], values)))[-1])
    return AggregateResult(total, len(table.rows), 0, True, "linearity")


def _avg(table, array):
    numerator = _sum(table, array)
    denominator = _count(table)
    if denominator.value == 0:
        value = math.nan
    else:
        value = numerator.value / denominator.value
    return AggregateResult(value, numerator.n_rows, 0, True, "ratio")


def _sorted_scan(n_rows, values, empty_value, precision=1e-4):
    """Literal transcription of expected_max's sorted scan with every
    probability pinned to exactly 1.0."""
    if not n_rows:
        return AggregateResult(empty_value, 0, 0, True, "empty")
    ordered = sorted(values, reverse=True)
    total = 0.0
    none_before = 1.0
    scanned = 0
    for value in ordered:
        remaining = ordered[scanned:]
        bound_magnitude = max(
            (abs(v) for v in remaining + [empty_value]), default=0.0
        )
        if none_before * bound_magnitude < precision:
            break
        total += value * 1.0 * none_before
        none_before *= 1.0 - 1.0
        scanned += 1
    total += empty_value * none_before
    return AggregateResult(
        total, n_rows, 0, scanned == len(ordered), "sorted-scan"
    )
