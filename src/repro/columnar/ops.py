"""Batch operators over :class:`~repro.columnar.columns.ColumnStore`.

Each entry point mirrors one row-path operator from
:mod:`repro.ctables.algebra` and either returns a **bit-identical**
result or ``None`` (fall back to the row path).  The gating rules exist
purely to protect bit-identity:

* Ordering comparisons (``< <= > >=``) vectorize only over float64-exact
  numeric columns and numeric constants — Python compares int/float
  exactly, so every vectorized value must round-trip through float64.
* ``+ - *`` vectorize only over all-*float* columns (Python int
  arithmetic is exact where float64 rounds); ``/`` and ``^`` never
  vectorize (ZeroDivision/complex semantics stay on the row path).
* ``= <>`` additionally work over object columns of any type — NumPy
  object arrays apply Python ``==`` elementwise, which never raises.
* Any unsupported atom falls the **whole conjunction** back, preserving
  the row path's per-row short-circuit error behaviour.

Mixed tables split per row: deterministic rows (condition TRUE) take the
mask, symbolic-remainder rows run the exact ``algebra.select`` row body,
and the merge walks ``table.rows`` in order — so output order is the row
path's order, row for row.
"""

import operator

import numpy as np

from repro.columnar import columns as C
from repro.ctables import algebra
from repro.ctables.table import CTRow
from repro.symbolic.conditions import conjoin
from repro.symbolic.expression import (
    BinOp,
    ColumnTerm,
    Constant,
    UnaryOp,
    is_numeric,
)

_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_ORDERED = ("<", "<=", ">", ">=")
#: a op b  <=>  b mirror(op) a — for pruning when the constant is on the left.
_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_VEC_ARITH = ("+", "-", "*")


# ---------------------------------------------------------------------------
# Static vectorizability (the planner's advisory mark)
# ---------------------------------------------------------------------------


def _expr_statically_ok(expr):
    if isinstance(expr, Constant):
        return True
    if isinstance(expr, ColumnTerm):
        return True
    if isinstance(expr, BinOp):
        return (
            expr.op in _VEC_ARITH
            and _expr_statically_ok(expr.left)
            and _expr_statically_ok(expr.right)
        )
    if isinstance(expr, UnaryOp):
        return expr.op == "-" and _expr_statically_ok(expr.operand)
    return False  # VarTerm, FuncTerm, params, var_create, …


def atom_statically_vectorizable(atom):
    """Schema-independent check the planner runs once per plan: could this
    atom *possibly* compile against a column store?  Runtime compilation
    still re-checks against actual column contents."""
    return _expr_statically_ok(atom.lhs) and _expr_statically_ok(atom.rhs)


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------
#
# Numeric nodes are tagged tuples evaluated per chunk:
#   ("scalar", float) | ("col", index) | ("bin", op, l, r) | ("neg", node)


def _const_float(value):
    """The float a numeric constant contributes, or None when float64
    cannot represent it exactly (Python would compare the int exactly)."""
    if not is_numeric(value):
        return None
    if isinstance(value, int):
        try:
            as_float = float(value)
        except OverflowError:
            return None
        if as_float != value:
            return None
        return as_float
    return value


def _compile_numeric(expr, store, under_arith=False):
    if isinstance(expr, Constant):
        as_float = _const_float(expr.value)
        if as_float is None:
            return None
        return ("scalar", as_float)
    if isinstance(expr, ColumnTerm):
        index = store.resolve(expr.name)
        if index is None:
            return None
        numeric = store.numeric(index)
        if numeric is None:
            return None
        if under_arith and not numeric[1]:
            return None  # int-bearing column: Python arithmetic is exact
        return ("col", index)
    if isinstance(expr, BinOp) and expr.op in _VEC_ARITH:
        left = _compile_numeric(expr.left, store, under_arith=True)
        right = _compile_numeric(expr.right, store, under_arith=True)
        if left is None or right is None:
            return None
        return ("bin", expr.op, left, right)
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _compile_numeric(expr.operand, store, under_arith=True)
        if inner is None:
            return None
        return ("neg", inner)
    return None


_ARITH = {"+": operator.add, "-": operator.sub, "*": operator.mul}


def _eval_numeric(node, store, start, end):
    tag = node[0]
    if tag == "scalar":
        return node[1]
    if tag == "col":
        return store.numeric(node[1])[0][start:end]
    if tag == "bin":
        return _ARITH[node[1]](
            _eval_numeric(node[2], store, start, end),
            _eval_numeric(node[3], store, start, end),
        )
    return -_eval_numeric(node[1], store, start, end)


def _compile_object(expr, store):
    """Bare terms only; returns ("scalar", value) | ("col", index)."""
    if isinstance(expr, Constant):
        return ("scalar", expr.value)
    if isinstance(expr, ColumnTerm):
        index = store.resolve(expr.name)
        if index is None or store.det_objects(index) is None:
            return None
        return ("col", index)
    return None


def _eval_object(node, store, start, end):
    if node[0] == "scalar":
        return node[1]
    return np.asarray(
        store.det_objects(node[1])[start:end], dtype=object
    )


def _as_mask(result, length):
    if np.ndim(result) == 0:
        return np.full(length, bool(result), dtype=bool)
    return np.asarray(result, dtype=bool)


# ---------------------------------------------------------------------------
# Atom compilation
# ---------------------------------------------------------------------------


def _zone_reject(op, probe):
    """Chunk-level refutation for ``column op probe``: True only when NO
    deterministic row in the chunk can satisfy the atom.  NaN cells fail
    every comparison except ``<>`` (where they always succeed), and an
    all-NaN chunk has ``(None, None, True)`` bounds."""

    def reject(zone):
        low, high, has_nan = zone
        if low is None:  # all NaN
            return op != "<>"
        if op == "=":
            return probe < low or probe > high
        if op == "<>":
            return (not has_nan) and low == high == probe
        if op == "<":
            return low >= probe
        if op == "<=":
            return low > probe
        if op == ">":
            return high <= probe
        return high < probe  # ">="

    return reject


class _CompiledAtom:
    __slots__ = ("op", "left", "right", "mode", "zone_col", "zone_fn", "bloom_probe")

    def __init__(self, op, left, right, mode):
        self.op = op
        self.left = left
        self.right = right
        self.mode = mode  # "num" | "obj"
        self.zone_col = None
        self.zone_fn = None
        self.bloom_probe = None

    def mask(self, store, start, end):
        if self.mode == "num":
            left = _eval_numeric(self.left, store, start, end)
            right = _eval_numeric(self.right, store, start, end)
        else:
            left = _eval_object(self.left, store, start, end)
            right = _eval_object(self.right, store, start, end)
        return _as_mask(_OPS[self.op](left, right), end - start)


def _attach_pruning(compiled):
    """Bare ``column op constant`` (either order) gains chunk pruning:
    zone maps for any comparison on a numeric column, a Bloom probe for
    equality (numeric or object columns alike)."""
    op, left, right = compiled.op, compiled.left, compiled.right
    if left[0] == "col" and right[0] == "scalar":
        index, probe = left[1], right[1]
    elif left[0] == "scalar" and right[0] == "col":
        index, probe = right[1], left[1]
        op = _MIRROR[op]
    else:
        return
    if compiled.mode == "num":
        compiled.zone_col = index
        compiled.zone_fn = _zone_reject(op, probe)
    if op == "=":
        try:
            hash(probe)
        except TypeError:
            return
        compiled.bloom_probe = (index, probe)


def _compile_atom(atom, store):
    left = _compile_numeric(atom.lhs, store)
    right = _compile_numeric(atom.rhs, store)
    if left is not None and right is not None:
        compiled = _CompiledAtom(atom.op, left, right, "num")
        _attach_pruning(compiled)
        return compiled
    if atom.op in ("=", "<>"):
        left = _compile_object(atom.lhs, store)
        right = _compile_object(atom.rhs, store)
        if left is not None and right is not None:
            compiled = _CompiledAtom(atom.op, left, right, "obj")
            _attach_pruning(compiled)
            return compiled
    return None


# ---------------------------------------------------------------------------
# Filter
# ---------------------------------------------------------------------------


def select_vectorized(db, table, atoms, condition, context=None):
    """One conjunction of ``atoms`` over ``table``, or ``None`` when any
    atom cannot vectorize.  ``condition`` is the row path's
    ``conjunction_of(*atoms)`` — the symbolic remainder binds it exactly
    as ``algebra.select`` would, and a deterministic row that passes the
    mask keeps its own condition object (``conjoin(φ, TRUE) is φ``)."""
    store = C.store_for(table)
    if store is None:
        return None
    compiled = []
    for atom in atoms:
        entry = _compile_atom(atom, store)
        if entry is None:
            return None
        compiled.append(entry)

    n_det = len(store.det_rows)
    mask = np.ones(n_det, dtype=bool)
    scanned = pruned_zone = pruned_bloom = 0
    if compiled and n_det:
        for ci, start, end in store.chunks():
            verdict = None
            for entry in compiled:
                if entry.zone_fn is not None and entry.zone_fn(
                    store.zones(entry.zone_col)[ci]
                ):
                    verdict = "zone"
                    break
            if verdict is None:
                for entry in compiled:
                    if entry.bloom_probe is not None:
                        index, probe = entry.bloom_probe
                        if not store.bloom(index, ci, start, end).might_contain(
                            probe
                        ):
                            verdict = "bloom"
                            break
            if verdict == "zone":
                pruned_zone += 1
                mask[start:end] = False
                continue
            if verdict == "bloom":
                pruned_bloom += 1
                mask[start:end] = False
                continue
            scanned += 1
            block = compiled[0].mask(store, start, end)
            for entry in compiled[1:]:
                block = np.logical_and(block, entry.mask(store, start, end))
            mask[start:end] = block

    if context is not None:
        context.chunks_scanned += scanned
        context.chunks_pruned_zone += pruned_zone
        context.chunks_pruned_bloom += pruned_bloom
    telemetry = getattr(db, "telemetry", None)
    if telemetry is not None and (scanned or pruned_zone or pruned_bloom):
        telemetry.on_columnar_scan(scanned, pruned_zone, pruned_bloom)

    out_rows = []
    det_flags = store.det_flags
    det_position = 0
    for i, row in enumerate(table.rows):
        if det_flags[i]:
            if mask[det_position]:
                # conjoin(φ, TRUE-bound) returns φ itself on the row path.
                out_rows.append(CTRow(row.values, row.condition))
            det_position += 1
        else:
            bound = condition.bind_columns(table.row_mapping(row))
            combined = conjoin(row.condition, bound)
            if not combined.is_false:
                out_rows.append(CTRow(row.values, combined))
    return table.with_rows(out_rows)


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------


def project(db, table, items):
    """``algebra.project`` with a batch fast path for all-name item lists
    (the common SELECT a, b shape): column slices zip straight into the
    output rows, skipping the per-row mapping dict the row path builds."""
    if getattr(db, "columnar", False):
        fast = _project_vectorized(table, items)
        if fast is not None:
            return fast
    return algebra.project(table, items)


def _project_vectorized(table, items):
    from repro.ctables.schema import Schema
    from repro.ctables.table import CTable

    if not items or not all(isinstance(item, str) for item in items):
        return None
    schema = table.schema
    indices = [schema.index_of(item) for item in items]  # same error as row path
    out = CTable(
        Schema([schema.columns[index] for index in indices]), name=table.name
    )
    store = C.store_for(table)
    if store is not None and len(table.rows) >= 64:
        cols = [store.objects(index) for index in indices]
        out.rows = [
            CTRow(values, row.condition)
            for values, row in zip(zip(*cols), table.rows)
        ]
    else:
        out.rows = [
            CTRow(tuple(row.values[index] for index in indices), row.condition)
            for row in table.rows
        ]
    return out


# ---------------------------------------------------------------------------
# Group-by partitioning (sort-based keying)
# ---------------------------------------------------------------------------


def partition(db, table, group_columns):
    """``algebra.partition`` with sort-based keying for a single numeric
    group column: ``np.unique`` codes the keys, a stable argsort groups
    the rows, and first-seen key order is restored — the exact dict-based
    grouping the row path produces (float64 equality coincides with
    Python ``==`` for round-tripping values, and key tuples come from the
    first row of each group, as ``dict`` insertion would)."""
    if getattr(db, "columnar", False):
        fast = _partition_vectorized(table, group_columns)
        if fast is not None:
            return fast
    return list(algebra.partition(table, group_columns))


def _partition_vectorized(table, group_columns):
    if len(group_columns) != 1:
        return None
    index = table.schema.index_of(group_columns[0])  # same error as row path
    rows = table.rows
    if not rows:
        return []
    floats = []
    for row in rows:
        value = row.values[index]
        as_float = _const_float(value)
        if as_float is None or as_float != as_float:  # non-numeric or NaN
            return None
        floats.append(as_float)
    array = np.asarray(floats, dtype=np.float64)
    unique, inverse = np.unique(array, return_inverse=True)
    n = len(rows)
    first_index = np.full(len(unique), n, dtype=np.int64)
    np.minimum.at(first_index, inverse, np.arange(n))
    key_order = np.argsort(first_index, kind="stable")
    row_order = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse, minlength=len(unique))
    offsets = np.concatenate(([0], np.cumsum(counts)))
    parts = []
    for code in key_order:
        members = row_order[offsets[code] : offsets[code + 1]]
        key = (rows[int(first_index[code])].values[index],)
        parts.append(
            (key, table.with_rows([rows[int(i)] for i in members]))
        )
    return parts
