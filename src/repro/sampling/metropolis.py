"""Metropolis sampling for stubborn constraint groups (Section IV-A(d)).

When rejection sampling keeps discarding candidates, Algorithm 4.3
escalates a group to a Metropolis random walk over the group's variables,
targeting the prior density restricted to the constraint region.  The
chain pays a burn-in cost once, then produces correlated-but-valid samples
at a fixed number of steps apiece — the paper's
``W_metropolis = C_burn_in + n · C_steps_per_sample`` cost model.

Requirements: every univariate member needs a marginal PDF and every
multivariate family a joint PDF (Algorithm 4.3 line 20).  The walk yields
*no* acceptance-rate probability estimate; callers needing P[K] must
integrate separately (line 31), exactly as the paper notes.
"""

import math

import numpy as np


class MetropolisGroupSampler:
    """Random-walk Metropolis over one independent variable group."""

    def __init__(self, layout, predicate, rng, options):
        """``layout`` is the :class:`~repro.sampling.samplers.GroupLayout`
        describing variables, densities and proposal scales;
        ``predicate(arrays) -> bool mask`` tests the constraint region.
        """
        self.layout = layout
        self.predicate = predicate
        self.rng = rng
        self.options = options
        self._state = None
        self._burned_in = False

    # -- density -----------------------------------------------------------

    def log_density(self, vector):
        """Log prior density at ``vector`` (constraint NOT included)."""
        total = 0.0
        for slot in self.layout.univariate_slots:
            density = slot.pdf(vector[slot.offset])
            if density <= 0.0 or not math.isfinite(density):
                return -math.inf
            total += math.log(density)
        for family in self.layout.family_slots:
            density = family.joint_pdf(
                vector[family.offset : family.offset + family.dimension]
            )
            if density <= 0.0 or not math.isfinite(density):
                return -math.inf
            total += math.log(density)
        return total

    def _satisfies(self, vector):
        arrays = self.layout.vector_to_arrays(vector[:, None])
        return bool(np.asarray(self.predicate(arrays)).reshape(-1)[0])

    @property
    def available(self):
        """Whether every member has the density the walk needs."""
        return self.layout.all_have_pdf

    # -- chain -------------------------------------------------------------

    def find_start(self, candidate_fn):
        """Scan candidate draws for a feasible start point (Alg 4.3 line 22).

        ``candidate_fn(size)`` returns candidate arrays from the group's
        ordinary samplers.  Returns True on success.
        """
        tries = self.options.metropolis_start_tries
        batch = 8192
        scanned = 0
        while scanned < tries:
            size = min(batch, tries - scanned)
            arrays = candidate_fn(size)
            mask = np.asarray(self.predicate(arrays)).reshape(-1)
            if mask.any():
                index = int(np.argmax(mask))
                self._state = self.layout.arrays_to_vector(arrays, index)
                return True
            scanned += size
        return False

    def _step(self, state, log_p_state):
        proposal = state + self.rng.normal(0.0, self.layout.step_scales)
        if not self._satisfies(proposal):
            return state, log_p_state, False
        log_p_proposal = self.log_density(proposal)
        if log_p_proposal == -math.inf:
            return state, log_p_state, False
        if math.log(self.rng.random() + 1e-300) < log_p_proposal - log_p_state:
            return proposal, log_p_proposal, True
        return state, log_p_state, False

    def sample(self, n):
        """Draw ``n`` (thinned) samples; returns arrays dict or ``None``.

        ``find_start`` must have succeeded first.
        """
        if self._state is None:
            return None
        state = self._state
        log_p = self.log_density(state)
        if log_p == -math.inf:
            return None
        if not self._burned_in:
            for _ in range(self.options.metropolis_burn_in):
                state, log_p, _accepted = self._step(state, log_p)
            self._burned_in = True
        thin = max(1, self.options.metropolis_thin)
        out = np.empty((n, self.layout.dimension))
        for i in range(n):
            for _ in range(thin):
                state, log_p, _accepted = self._step(state, log_p)
            out[i] = state
        self._state = state
        return self.layout.vector_to_arrays(out.T)
