"""Histogram sampling — the ``*_hist`` operators (Section V-C).

"Instead of outputting the average of the results, it instead outputs an
array of all the generated samples.  This array may be used to generate
histograms and similar visualizations."
"""

import numpy as np

from repro.sampling.expectation import ExpectationEngine


class Histogram:
    """Equi-width histogram over a sample array."""

    __slots__ = ("edges", "counts", "n")

    def __init__(self, samples, bins=20, value_range=None):
        samples = np.asarray(samples, dtype=float)
        self.n = samples.size
        counts, edges = np.histogram(samples, bins=bins, range=value_range)
        self.counts = counts
        self.edges = edges

    @property
    def densities(self):
        """Probability mass per bin (sums to 1 for non-empty input)."""
        if self.n == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / self.n

    def bin_centers(self):
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def rows(self):
        """(lo, hi, count, density) per bin — what a UI would render."""
        density = self.densities
        return [
            (float(self.edges[i]), float(self.edges[i + 1]), int(self.counts[i]), float(density[i]))
            for i in range(len(self.counts))
        ]

    def __repr__(self):
        return "Histogram(n=%d, bins=%d)" % (self.n, len(self.counts))


def expression_samples(expr, condition, n, engine=None, seed=None, options=None):
    """Raw conditional samples of an expression under its row context.

    Returns an ndarray of length ``n`` (or None for unsatisfiable
    contexts) — the building block of ``expected_sum_hist`` and
    ``expected_max_hist``.
    """
    engine = engine or ExpectationEngine()
    return engine.sample_expression(expr, condition, n, seed=seed, options=options)


def expression_histogram(expr, condition, n, bins=20, engine=None, seed=None, options=None):
    """Sample and bin in one call."""
    samples = expression_samples(
        expr, condition, n, engine=engine, seed=seed, options=options
    )
    if samples is None:
        return None
    return Histogram(samples, bins=bins)
