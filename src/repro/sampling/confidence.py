"""Confidence computation: the paper's ``conf()`` and ``aconf()``.

``conf`` integrates one row's *conjunctive* condition: the probability is
the product over minimal independent subsets, each integrated exactly (CDF
or discrete-domain enumeration) when possible and by restricted rejection
sampling otherwise.

``aconf`` performs "general integration" for DNF conditions produced by
``distinct``: the joint probability of all equivalent rows.  Small
disjunctions with exactly-integrable terms go through inclusion-exclusion;
everything else falls back to joint Monte Carlo over the full DNF.
"""

import itertools

from repro.sampling.expectation import ExpectationEngine
from repro.symbolic.conditions import Conjunction, Disjunction, conjoin


class ConfidenceResult:
    """Probability plus provenance (exactness, sample count)."""

    __slots__ = ("probability", "exact")

    def __init__(self, probability, exact):
        self.probability = probability
        self.exact = exact

    def __float__(self):
        return float(self.probability)

    def __repr__(self):
        return "ConfidenceResult(%.6g, %s)" % (
            self.probability,
            "exact" if self.exact else "sampled",
        )


#: Inclusion-exclusion is exponential in the number of disjuncts; past this
#: size (2^8 = 255 subset probabilities) joint sampling is cheaper.
_IE_LIMIT = 8


def conf(condition, engine=None, seed=None, options=None):
    """P[condition] for a (typically conjunctive) row condition."""
    engine = engine or ExpectationEngine()
    probability, exact = engine.probability(condition, seed=seed, options=options)
    return ConfidenceResult(probability, exact)


def aconf(condition, engine=None, seed=None, options=None):
    """Joint probability of a DNF condition (Section V-C).

    For conjunctions this coincides with :func:`conf`.
    """
    engine = engine or ExpectationEngine()
    if isinstance(condition, Conjunction) or condition.is_false:
        return conf(condition, engine=engine, seed=seed, options=options)
    assert isinstance(condition, Disjunction)
    disjuncts = condition.disjuncts
    if len(disjuncts) <= _IE_LIMIT:
        result = _inclusion_exclusion(disjuncts, engine, seed, options)
        if result is not None:
            return result
    probability, exact = engine.probability(condition, seed=seed, options=options)
    return ConfidenceResult(probability, exact)


def _inclusion_exclusion(disjuncts, engine, seed, options):
    """P[∨ cᵢ] = Σ_S (-1)^(|S|+1) P[∧_{i∈S} cᵢ] — only used when every
    subset probability is *exact*, so no alternating-sign error blowup.

    Returns None when any subset needs sampling (caller falls back).
    """
    total = 0.0
    for size in range(1, len(disjuncts) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in itertools.combinations(disjuncts, size):
            combined = subset[0]
            for term in subset[1:]:
                combined = conjoin(combined, term)
            probability, exact = engine.probability(
                combined, seed=seed, options=options
            )
            if not exact:
                return None
            total += sign * probability
    return ConfidenceResult(min(max(total, 0.0), 1.0), True)
