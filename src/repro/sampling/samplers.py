"""Per-group conditional samplers (Section IV-A).

A :class:`GroupSampler` produces samples of one minimal independent subset
of variables *conditioned on* that group's constraint atoms.  Strategy per
variable, chosen exactly as Algorithm 4.3 lines 5–10 prescribe:

* ``fixed``   — the consistency pass pinned the (discrete) variable to a
  point; candidates are constant and the point's mass multiplies the
  group's probability.
* ``cdf``     — the variable has finite tightened bounds and its marginal
  has CDF + inverse CDF: draw uniforms inside ``[CDF(lo), CDF(hi)]`` and
  invert, so every candidate respects the bounds (Section IV-A(b)).  The
  window's mass multiplies the group probability.
* ``natural`` — plain ``Generate`` draws.

Candidates are tested against the group predicate in vectorised batches
(rejection sampling); if the rejection rate crosses the Metropolis
threshold and densities are available, the group escalates to a random
walk (Section IV-A(d)).  The result records attempts/acceptances so the
caller can recover ``P[K] = window_mass × acceptance_rate`` for free
(Algorithm 4.3 line 29).
"""

import math

import numpy as np

from repro.distributions import MultivariateDistribution
from repro.sampling.metropolis import MetropolisGroupSampler
from repro.util.errors import SamplingError
from repro.util.intervals import Interval


class UnivariateSlot:
    """Sampling plan for one univariate (or marginalised) variable."""

    __slots__ = (
        "variable",
        "offset",
        "dist",
        "params",
        "strategy",
        "window_lo",
        "window_hi",
        "mass",
        "fixed_value",
        "step_scale",
    )

    def __init__(self, variable, offset, dist, params):
        self.variable = variable
        self.offset = offset
        self.dist = dist
        self.params = params
        self.strategy = "natural"
        self.window_lo = 0.0
        self.window_hi = 1.0
        self.mass = 1.0
        self.fixed_value = None
        self.step_scale = 1.0

    def pdf(self, x):
        return float(self.dist.pdf(self.params, x))

    @property
    def has_pdf(self):
        return self.dist.has("pdf") and not self.dist.is_discrete


class FamilySlot:
    """Sampling plan for one multivariate family (joint draws only)."""

    __slots__ = ("vid", "members", "offset", "dimension", "dist", "params", "step_scales")

    def __init__(self, vid, members, offset, dist, params):
        self.vid = vid
        self.members = members  # RandomVariable components present in group
        self.offset = offset
        self.dist = dist
        self.params = params
        self.dimension = dist.dimension_of(params)
        variances = []
        for i in range(self.dimension):
            marginal = dist.marginal(params, i)
            if marginal is None:
                variances.append(1.0)
            else:
                from repro.distributions import get_distribution

                mdist = get_distribution(marginal[0])
                mparams = mdist.validate_params(marginal[1])
                variances.append(max(mdist.variance(mparams), 1e-6))
        self.step_scales = np.sqrt(np.asarray(variances)) / 3.0

    def joint_pdf(self, vector):
        return float(self.dist.pdf(self.params, np.asarray(vector)))

    @property
    def has_pdf(self):
        return self.dist.has("pdf")


class GroupLayout:
    """Flat vector layout over a group's variables (for Metropolis)."""

    def __init__(self, univariate_slots, family_slots):
        self.univariate_slots = univariate_slots
        self.family_slots = family_slots
        self.dimension = len(univariate_slots) + sum(
            f.dimension for f in family_slots
        )
        scales = np.ones(self.dimension)
        for slot in univariate_slots:
            scales[slot.offset] = slot.step_scale
        for family in family_slots:
            scales[family.offset : family.offset + family.dimension] = (
                family.step_scales
            )
        self.step_scales = scales

    @property
    def all_have_pdf(self):
        return all(s.has_pdf and s.strategy != "fixed" for s in self.univariate_slots) and all(
            f.has_pdf for f in self.family_slots
        )

    def vector_to_arrays(self, matrix):
        """(dimension, n) matrix -> arrays dict keyed by variable key."""
        arrays = {}
        for slot in self.univariate_slots:
            arrays[slot.variable.key] = matrix[slot.offset]
        for family in self.family_slots:
            for member in family.members:
                arrays[member.key] = matrix[family.offset + member.subscript]
        return arrays

    def arrays_to_vector(self, arrays, index):
        """One candidate (column ``index`` of ``arrays``) as a flat vector.

        Family components absent from ``arrays`` are filled with fresh
        marginal draws at construction time by the caller; here we require
        presence.
        """
        vector = np.zeros(self.dimension)
        for slot in self.univariate_slots:
            vector[slot.offset] = arrays[slot.variable.key][index]
        for family in self.family_slots:
            for member in family.members:
                vector[family.offset + member.subscript] = arrays[member.key][index]
        return vector


class GroupSampleResult:
    """Outcome of conditional sampling over one group."""

    __slots__ = ("arrays", "n", "attempts", "accepted", "mass", "used_metropolis", "impossible")

    def __init__(self, arrays, n, attempts, accepted, mass, used_metropolis, impossible=False):
        self.arrays = arrays
        self.n = n
        self.attempts = attempts
        self.accepted = accepted
        self.mass = mass
        self.used_metropolis = used_metropolis
        self.impossible = impossible

    @property
    def probability_estimate(self):
        """``window_mass × acceptance_rate``; None when Metropolis was used
        (the walk yields no rate — Algorithm 4.3 line 31)."""
        if self.impossible:
            return 0.0
        if self.used_metropolis:
            return None
        if self.attempts == 0:
            return self.mass
        return self.mass * (self.accepted / self.attempts)


class GroupSampler:
    """Conditional sampler for one minimal independent subset.

    ``initial_attempts``/``initial_accepted`` let a caller resume the
    rejection bookkeeping of an earlier sampler over the same group — the
    sample bank uses this so cached acceptance rates keep informing both
    ``P[K]`` estimates and the Metropolis escalation heuristic across
    top-ups.
    """

    def __init__(self, group, bounds, predicate, rng, options,
                 initial_attempts=0, initial_accepted=0):
        self.group = group
        self.predicate = predicate
        self.rng = rng
        self.options = options
        self.impossible = False
        self._build_layout(bounds)
        self._metropolis = None
        self._attempts = int(initial_attempts)
        self._accepted = int(initial_accepted)
        # max_attempts_per_group budgets *this sampler's* work; inherited
        # counters inform rates but must not exhaust the budget up front.
        self._initial_attempts = int(initial_attempts)

    @property
    def attempts(self):
        """Rejection candidates tested so far (metropolis draws excluded)."""
        return self._attempts

    @property
    def accepted(self):
        """Rejection candidates that satisfied the group predicate."""
        return self._accepted

    @property
    def can_estimate_probability(self):
        """Whether the acceptance counters still estimate P[K].

        False once Metropolis takes over: the walk produces samples but no
        acceptance rate (Algorithm 4.3 line 31)."""
        return self._metropolis is None

    # -- construction -------------------------------------------------------

    def _build_layout(self, bounds):
        univariate = []
        families = {}
        offset = 0
        for variable in self.group.variables:
            if variable.is_multivariate:
                families.setdefault(variable.vid, []).append(variable)
        for variable in self.group.variables:
            if variable.is_multivariate:
                continue
            marginal = variable.marginal()
            dist, params = marginal
            slot = UnivariateSlot(variable, offset, dist, params)
            self._plan_slot(slot, bounds.get(variable.key, Interval()))
            univariate.append(slot)
            offset += 1
        family_slots = []
        for vid in sorted(families):
            members = sorted(families[vid], key=lambda v: v.subscript)
            exemplar = members[0]
            dist = exemplar.distribution
            params = dist.validate_params(exemplar.params)
            slot = FamilySlot(vid, members, offset, dist, params)
            family_slots.append(slot)
            offset += slot.dimension
        self.layout = GroupLayout(univariate, family_slots)
        self.mass = 1.0
        for slot in univariate:
            self.mass *= slot.mass
        if self.mass <= 0.0:
            self.impossible = True

    def _plan_slot(self, slot, interval):
        options = self.options
        if not options.use_consistency_bounds:
            interval = Interval()
        dist, params = slot.dist, slot.params
        # Default proposal scale for Metropolis.
        if dist.has("variance"):
            variance = dist.variance(params)
            if math.isfinite(variance) and variance > 0:
                slot.step_scale = math.sqrt(variance) / 3.0
        if interval.is_empty:
            slot.strategy = "impossible"
            slot.mass = 0.0
            return
        if interval.is_point:
            value = interval.lo
            if dist.is_discrete:
                slot.strategy = "fixed"
                slot.fixed_value = value
                slot.mass = dist.pmf_at(params, value)
            else:
                # A continuous variable pinned to a point carries no mass.
                slot.strategy = "impossible"
                slot.mass = 0.0
            if slot.mass <= 0.0:
                slot.strategy = "impossible"
                slot.mass = 0.0
            return
        if (
            not interval.is_full
            and options.use_cdf_inversion
            and dist.has("cdf")
            and dist.has("inverse_cdf")
        ):
            hi = float(dist.cdf(params, interval.hi)) if math.isfinite(interval.hi) else 1.0
            if math.isfinite(interval.lo):
                lo = float(dist.cdf(params, interval.lo))
                if dist.is_discrete:
                    lo -= dist.pmf_at(params, interval.lo)
            else:
                lo = 0.0
            mass = max(0.0, hi - lo)
            if mass <= 0.0:
                slot.strategy = "impossible"
                slot.mass = 0.0
                return
            slot.strategy = "cdf"
            slot.window_lo = lo
            slot.window_hi = hi
            slot.mass = mass
            if interval.is_bounded:
                slot.step_scale = max(interval.width() / 6.0, 1e-6)
            return
        slot.strategy = "natural"

    # -- candidate generation ----------------------------------------------------

    def draw_candidates(self, size):
        """Unconditioned (but window-restricted) candidate arrays."""
        matrix = np.empty((self.layout.dimension, size))
        for slot in self.layout.univariate_slots:
            if slot.strategy == "fixed":
                matrix[slot.offset] = slot.fixed_value
            elif slot.strategy == "cdf":
                uniforms = self.rng.uniform(slot.window_lo, slot.window_hi, size)
                matrix[slot.offset] = np.asarray(
                    slot.dist.inverse_cdf(slot.params, uniforms), dtype=float
                )
            else:
                matrix[slot.offset] = np.asarray(
                    slot.dist.generate_batch(slot.params, self.rng, size), dtype=float
                )
        for family in self.layout.family_slots:
            joint = family.dist.generate_joint_batch(family.params, self.rng, size)
            matrix[family.offset : family.offset + family.dimension] = joint.T
        return self.layout.vector_to_arrays(matrix)

    # -- conditional sampling -------------------------------------------------------

    def sample(self, n):
        """Draw ``n`` conditional samples; returns :class:`GroupSampleResult`.

        Falls back to Metropolis when rejection is hopeless and densities
        exist; returns an ``impossible`` result when the group provably (or
        practically) carries no probability mass.
        """
        if self.impossible:
            return GroupSampleResult(None, 0, 0, 0, 0.0, False, impossible=True)
        if self._metropolis is not None:
            return self._sample_metropolis(n)

        collected = {key: [] for key in self._group_keys()}
        collected_count = 0
        batch = max(self.options.batch_size, 2 * n)
        while collected_count < n:
            arrays = self.draw_candidates(batch)
            mask = np.asarray(self.predicate(arrays)).reshape(-1)
            if mask.size == 1 and batch > 1:  # constant predicate
                mask = np.full(batch, bool(mask[0]))
            accepted = int(mask.sum())
            self._attempts += batch
            self._accepted += accepted
            if accepted:
                for key in collected:
                    collected[key].append(arrays[key][mask])
                collected_count += accepted
            if collected_count >= n:
                break
            # Escalation check (Algorithm 4.3 lines 18-25).  The warm-up
            # floor keeps the rejection-rate estimate meaningful: with the
            # default threshold of 0.9999 we must have seen >= 64k
            # candidates before a zero-acceptance streak is evidence of a
            # hopeless constraint rather than bad luck.
            rejection_rate = 1.0 - (self._accepted / self._attempts)
            warmup = max(4 * self.options.batch_size, 65536)
            if (
                self.options.use_metropolis
                and self._attempts >= warmup
                and rejection_rate > self.options.metropolis_threshold
                and self.layout.all_have_pdf
            ):
                walker = MetropolisGroupSampler(
                    self.layout, self.predicate, self.rng, self.options
                )
                if walker.find_start(self.draw_candidates):
                    self._metropolis = walker
                    return self._sample_metropolis(n)
                return GroupSampleResult(
                    None, 0, self._attempts, self._accepted, self.mass, False,
                    impossible=True,
                )
            if (
                self._attempts - self._initial_attempts
                >= self.options.max_attempts_per_group
            ):
                if self._accepted == 0:
                    # Practically unsatisfiable: report zero probability.
                    return GroupSampleResult(
                        None, 0, self._attempts, 0, self.mass, False,
                        impossible=True,
                    )
                raise SamplingError(
                    "group %r exceeded %d attempts (acceptance %.2e)"
                    % (self.group, self._attempts, self._accepted / self._attempts)
                )
            acceptance = max(self._accepted / self._attempts, 1e-4)
            needed = n - collected_count
            batch = int(min(max(needed / acceptance * 1.2, self.options.batch_size), 65536))

        arrays = {
            key: np.concatenate(parts)[:n] for key, parts in collected.items()
        }
        return GroupSampleResult(
            arrays, n, self._attempts, self._accepted, self.mass, False
        )

    def _sample_metropolis(self, n):
        arrays = self._metropolis.sample(n)
        if arrays is None:
            return GroupSampleResult(
                None, 0, self._attempts, self._accepted, self.mass, True,
                impossible=True,
            )
        return GroupSampleResult(
            arrays, n, self._attempts, self._accepted, self.mass, True
        )

    def _group_keys(self):
        keys = [s.variable.key for s in self.layout.univariate_slots]
        for family in self.layout.family_slots:
            keys.extend(m.key for m in family.members)
        return keys

    # -- probability-only support ------------------------------------------------

    def probability_estimate_or_none(self):
        """Free probability estimate from prior bookkeeping, if any.

        None when nothing was sampled yet or Metropolis took over (its
        draws carry no acceptance rate).
        """
        if self.impossible:
            return 0.0
        if self._metropolis is not None or self._attempts == 0:
            return None
        return self.mass * (self._accepted / self._attempts)

    def estimate_probability(self, n_min):
        """Estimate P[K] by sampling without Metropolis (Alg 4.3 line 34).

        Ensures at least ``n_min`` candidates have been tested; returns the
        running ``mass × acceptance`` estimate.
        """
        if self.impossible:
            return 0.0
        while self._attempts < n_min:
            size = min(
                max(self.options.batch_size, n_min - self._attempts), 65536
            )
            arrays = self.draw_candidates(size)
            mask = np.asarray(self.predicate(arrays)).reshape(-1)
            if mask.size == 1 and size > 1:
                mask = np.full(size, bool(mask[0]))
            self._attempts += size
            self._accepted += int(mask.sum())
        return self.mass * (self._accepted / self._attempts)
