"""Tunables for the sampling subsystem.

One options object travels through the expectation operator, the
confidence computation and the aggregates.  The ``use_*`` switches exist
for the ablation benchmarks: each disables one of the paper's
optimisations so its contribution can be measured (DESIGN.md §4).
"""


class SamplingOptions:
    """Knobs for Algorithm 4.3 and friends.

    Parameters
    ----------
    epsilon, delta:
        The (ε, δ) precision goal: sampling stops once the two-sided
        ``1-ε`` confidence half-width is below ``δ·|mean|`` (with floors),
        as in Algorithm 4.3 line 12.
    n_samples:
        When set, draw exactly this many conditional samples instead of
        adapting — the mode every benchmark in the paper uses (1000).
    min_samples / max_samples:
        Floors/caps for the adaptive mode.
    batch_size:
        Candidate batch granularity for the vectorised rejection loop.
    metropolis_threshold:
        Rejection-rate trigger for escalating a group to Metropolis
        (Algorithm 4.3 line 19).  The paper's cost model is
        ``W_metropolis = C_burn_in + n·C_step`` vs ``W_naive = n/P[accept]``;
        with this implementation's constants (vectorised numpy rejection at
        ~30M draws/s vs a Python-loop chain at ~10k steps/s) the crossover
        sits near acceptance 1e-4, hence the very high default.
    metropolis_burn_in / metropolis_thin:
        Chain warm-up length and steps between retained samples.
    metropolis_start_tries:
        How many candidate draws to scan for a feasible chain start
        (line 22); failure yields (NaN, 0) per line 23.
    max_attempts_per_group:
        Hard cap on candidate draws per group before giving up.
    use_cdf_inversion / use_independence / use_consistency_bounds /
    use_exact_probability / use_exact_linear / use_metropolis:
        Ablation switches for the individual techniques of Section IV.
    use_exact_truncated:
        Opt-in "advanced statistical methods" path (Section III-D): when
        the measured expression is affine in single-variable constrained
        groups, use closed-form truncated means (``Distribution.mean_in``
        or discrete domain enumeration) instead of sampling.  Off by
        default so estimates carry the paper's Monte Carlo semantics.
    use_sample_bank:
        Let a database-owned :class:`~repro.samplebank.SampleBank` cache
        per-group conditional samples across rows and queries.  Engines
        without a bank attached ignore this flag; with it off the engine
        samples every call from scratch (the seed-era behaviour).
    bank_capacity:
        Maximum number of group bundles held in memory (LRU beyond it).
    bank_spill_dir:
        When set, evicted bundles spill to compressed ``.npz`` files in
        this directory and reload transparently on the next request.
    parallel_workers:
        How many sampling workers the parallel executor may use.  ``0``
        (default) runs fully serial; a positive int pins the pool size;
        ``"auto"`` resolves to ``os.cpu_count() - 1`` (serial on a
        single-core host).  Group sampling jobs are pre-materialised into
        the sample bank across the pool; results are bit-identical to
        serial execution because every bundle is a pure function of its
        cache key and deterministic seed stream.  Requires an active
        sample bank (``use_sample_bank=True``).
    parallel_chunk_size:
        How many group jobs one worker task carries.  ``"auto"`` (default)
        balances per-task overhead against load-balancing by aiming for
        ~4 tasks per worker; a positive int pins the chunk size.

    Example
    -------
    >>> options = SamplingOptions(n_samples=1000, parallel_workers=4)
    >>> options
    <SamplingOptions fixed n=1000>
    >>> options.replace(n_samples=None, epsilon=0.01)
    <SamplingOptions adaptive eps=0.01 delta=0.02>
    """

    __slots__ = (
        "epsilon",
        "delta",
        "n_samples",
        "min_samples",
        "max_samples",
        "batch_size",
        "metropolis_threshold",
        "metropolis_burn_in",
        "metropolis_thin",
        "metropolis_start_tries",
        "max_attempts_per_group",
        "use_cdf_inversion",
        "use_independence",
        "use_consistency_bounds",
        "use_exact_probability",
        "use_exact_linear",
        "use_exact_truncated",
        "use_metropolis",
        "use_sample_bank",
        "bank_capacity",
        "bank_spill_dir",
        "parallel_workers",
        "parallel_chunk_size",
    )

    def __init__(
        self,
        epsilon=0.05,
        delta=0.02,
        n_samples=None,
        min_samples=64,
        max_samples=50000,
        batch_size=512,
        metropolis_threshold=0.9999,
        metropolis_burn_in=300,
        metropolis_thin=5,
        metropolis_start_tries=100000,
        max_attempts_per_group=2000000,
        use_cdf_inversion=True,
        use_independence=True,
        use_consistency_bounds=True,
        use_exact_probability=True,
        use_exact_linear=True,
        use_exact_truncated=False,
        use_metropolis=True,
        use_sample_bank=True,
        bank_capacity=512,
        bank_spill_dir=None,
        parallel_workers=0,
        parallel_chunk_size="auto",
    ):
        self.epsilon = epsilon
        self.delta = delta
        self.n_samples = n_samples
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.batch_size = batch_size
        self.metropolis_threshold = metropolis_threshold
        self.metropolis_burn_in = metropolis_burn_in
        self.metropolis_thin = metropolis_thin
        self.metropolis_start_tries = metropolis_start_tries
        self.max_attempts_per_group = max_attempts_per_group
        self.use_cdf_inversion = use_cdf_inversion
        self.use_independence = use_independence
        self.use_consistency_bounds = use_consistency_bounds
        self.use_exact_probability = use_exact_probability
        self.use_exact_linear = use_exact_linear
        self.use_exact_truncated = use_exact_truncated
        self.use_metropolis = use_metropolis
        self.use_sample_bank = use_sample_bank
        self.bank_capacity = bank_capacity
        self.bank_spill_dir = bank_spill_dir
        self.parallel_workers = parallel_workers
        self.parallel_chunk_size = parallel_chunk_size

    def replace(self, **overrides):
        """A copy with the given fields changed (the original is never
        mutated — one options object may be shared by many operators)."""
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(overrides)
        return SamplingOptions(**kwargs)

    def __repr__(self):
        fixed = "fixed n=%s" % self.n_samples if self.n_samples else (
            "adaptive eps=%g delta=%g" % (self.epsilon, self.delta)
        )
        return "<SamplingOptions %s>" % fixed


DEFAULT_OPTIONS = SamplingOptions()
