"""Deterministic world generation.

"As a single variable may appear simultaneously at multiple points within
the database, the unique identifier is used to ensure [the] sampling
process generates consistent values for the variable within a given
sample" (Section III-B).  We realise this by deriving the RNG stream for a
variable in world ``w`` from a stable hash of ``(base seed, vid, w)``:
any occurrence of the variable in world ``w`` reads the same stream, no
matter which operator asks first, and no global state is needed — exactly
the paper's seed-only storage model.

Multivariate families draw their whole joint vector from the family's
stream, then expose components by subscript.
"""

import numpy as np

from repro.distributions import MultivariateDistribution, rng_from_seed
from repro.util.hashing import derive_seed


class WorldSampler:
    """Generates consistent variable values for numbered sample worlds."""

    def __init__(self, base_seed=0):
        self.base_seed = base_seed

    def rng_for(self, vid, world_index):
        """The per-(variable family, world) generator."""
        return rng_from_seed(derive_seed(self.base_seed, "world", vid, world_index))

    def value(self, variable, world_index):
        """The variable's value in world ``world_index`` (a float)."""
        dist = variable.distribution
        params = dist.validate_params(variable.params)
        rng = self.rng_for(variable.vid, world_index)
        if isinstance(dist, MultivariateDistribution):
            joint = dist.generate_joint_batch(params, rng, 1)[0]
            return float(joint[variable.subscript])
        return float(dist.generate_batch(params, rng, 1)[0])

    def assignment(self, variables, world_index):
        """Assignment dict (variable key -> value) for one world."""
        out = {}
        families = {}
        for variable in sorted(variables, key=lambda v: v.key):
            if variable.is_multivariate:
                families.setdefault(variable.vid, []).append(variable)
            else:
                out[variable.key] = self.value(variable, world_index)
        for vid, members in families.items():
            exemplar = members[0]
            dist = exemplar.distribution
            params = dist.validate_params(exemplar.params)
            joint = dist.generate_joint_batch(
                params, self.rng_for(vid, world_index), 1
            )[0]
            for member in members:
                out[member.key] = float(joint[member.subscript])
        return out

    def batch(self, variables, world_indices):
        """Arrays of values per variable key across several worlds.

        Returns a dict mapping each variable key to an ndarray aligned with
        ``world_indices``.  Values agree with :meth:`value`/:meth:`assignment`
        for the same world index (one stream per family per world).
        """
        variables = sorted(set(variables), key=lambda v: v.key)
        arrays = {v.key: np.empty(len(world_indices)) for v in variables}
        for column, world_index in enumerate(world_indices):
            assignment = self.assignment(variables, world_index)
            for variable in variables:
                arrays[variable.key][column] = assignment[variable.key]
        return arrays

    # -- bulk streams (Sample-First engine) ---------------------------------

    def array(self, variable, n_worlds):
        """All of worlds ``0..n_worlds-1`` for one variable, vectorised.

        One RNG stream per variable *family* produces the whole array at
        once; world ``w`` is element ``w``.  This is much faster than
        :meth:`batch` but uses a different (equally deterministic) stream
        layout, so the two APIs must not be mixed for the same data.
        """
        dist = variable.distribution
        params = dist.validate_params(variable.params)
        rng = rng_from_seed(derive_seed(self.base_seed, "stream", variable.vid))
        if isinstance(dist, MultivariateDistribution):
            joint = dist.generate_joint_batch(params, rng, n_worlds)
            return np.asarray(joint[:, variable.subscript], dtype=float)
        return np.asarray(dist.generate_batch(params, rng, n_worlds), dtype=float)

    def arrays(self, variables, n_worlds):
        """Vectorised :meth:`array` for a set of variables.

        Components of one multivariate family are extracted from a single
        joint draw so their dependence structure is preserved.
        """
        variables = sorted(set(variables), key=lambda v: v.key)
        out = {}
        families = {}
        for variable in variables:
            if variable.is_multivariate:
                families.setdefault(variable.vid, []).append(variable)
            else:
                out[variable.key] = self.array(variable, n_worlds)
        for vid, members in families.items():
            exemplar = members[0]
            dist = exemplar.distribution
            params = dist.validate_params(exemplar.params)
            rng = rng_from_seed(derive_seed(self.base_seed, "stream", vid))
            joint = dist.generate_joint_batch(params, rng, n_worlds)
            for member in members:
                out[member.key] = np.asarray(joint[:, member.subscript], dtype=float)
        return out
