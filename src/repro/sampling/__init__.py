"""Sampling and integration (Section IV).

The central object is :class:`~repro.sampling.expectation.ExpectationEngine`
— the Algorithm 4.3 operator.  Everything else supports it: world
generation, per-group conditional samplers, Metropolis escalation,
confidence integration, histograms and moments.
"""

from repro.sampling.options import SamplingOptions, DEFAULT_OPTIONS
from repro.sampling.worldgen import WorldSampler
from repro.sampling.samplers import GroupSampler, GroupSampleResult
from repro.sampling.metropolis import MetropolisGroupSampler
from repro.sampling.expectation import ExpectationEngine, ExpectationResult
from repro.sampling.confidence import conf, aconf, ConfidenceResult
from repro.sampling.histogram import (
    Histogram,
    expression_samples,
    expression_histogram,
)
from repro.sampling.moments import conditional_moments, MomentsResult

__all__ = [
    "SamplingOptions",
    "DEFAULT_OPTIONS",
    "WorldSampler",
    "GroupSampler",
    "GroupSampleResult",
    "MetropolisGroupSampler",
    "ExpectationEngine",
    "ExpectationResult",
    "conf",
    "aconf",
    "ConfidenceResult",
    "Histogram",
    "expression_samples",
    "expression_histogram",
    "conditional_moments",
    "MomentsResult",
]
