"""Higher moments of conditional expressions.

The expectation operator generalises directly: the k-th raw moment is the
expectation of ``E^k`` under the same context, and central moments follow
from raw ones.  The paper lists "the higher moments" among the
distribution-specific values advanced methods may exploit; here they are
computed from the same conditional sample streams the mean uses.
"""

import math

import numpy as np

from repro.sampling.expectation import ExpectationEngine


class MomentsResult:
    """First and second (optionally higher) conditional moments."""

    __slots__ = ("mean", "variance", "stddev", "skewness", "kurtosis", "n_samples")

    def __init__(self, mean, variance, skewness, kurtosis, n_samples):
        self.mean = mean
        self.variance = variance
        self.stddev = math.sqrt(variance) if variance >= 0 else math.nan
        self.skewness = skewness
        self.kurtosis = kurtosis
        self.n_samples = n_samples

    def __repr__(self):
        return "MomentsResult(mean=%.6g, var=%.6g, n=%d)" % (
            self.mean,
            self.variance,
            self.n_samples,
        )


def conditional_moments(expr, condition, n, engine=None, seed=None, options=None):
    """Mean/variance/skewness/excess-kurtosis of ``expr`` given ``condition``.

    Returns None when the context is unsatisfiable.
    """
    engine = engine or ExpectationEngine()
    samples = engine.sample_expression(expr, condition, n, seed=seed, options=options)
    if samples is None:
        return None
    samples = np.asarray(samples, dtype=float)
    mean = float(samples.mean())
    centered = samples - mean
    variance = float(np.mean(centered**2))
    if variance <= 0:
        return MomentsResult(mean, variance, 0.0, 0.0, samples.size)
    std = math.sqrt(variance)
    skewness = float(np.mean(centered**3) / std**3)
    kurtosis = float(np.mean(centered**4) / variance**2 - 3.0)
    return MomentsResult(mean, variance, skewness, kurtosis, samples.size)
