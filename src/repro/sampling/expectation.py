"""The expectation operator — Algorithm 4.3.

Given an expression ``E`` and its context condition ``C`` (the row's local
condition), compute ``E[E | C]`` and optionally ``P[C]``.  The operator is
invoked with the *lossless* symbolic representation, so it can:

1. split ``C`` into minimal independent subsets (Section IV-A(c)),
2. run the Algorithm 3.2 consistency check per group, keeping the bounds
   map it produces,
3. sample each group conditionally — inverse-CDF inside discovered bounds
   where possible, rejection otherwise, Metropolis when rejection is
   hopeless (Section IV-A),
4. take exact shortcuts: single-variable groups integrate via the CDF
   ("at most two evaluations", Section III-A), and affine expressions over
   unconstrained variables use closed-form means,
5. recover ``P[C]`` as the product of per-group probabilities, most of it
   free from the rejection bookkeeping (Algorithm 4.3 line 29).

Independent groups are sampled separately and their draws zipped
column-wise; independence makes the zipped draws valid joint conditional
samples, which is precisely why the decomposition "not only reduces the
work lost generating non-satisfying samples, but also decreases the
frequency with which this happens".
"""

import math

import numpy as np

from repro.constraints.consistency import check_consistency
from repro.constraints.independence import groups_for_condition
from repro.distributions import rng_from_seed
from repro.sampling.options import DEFAULT_OPTIONS
from repro.sampling.samplers import GroupSampler
from repro.symbolic.conditions import Conjunction, Disjunction
from repro.symbolic.expression import as_expression
from repro.util.errors import PIPError
from repro.util.hashing import stable_hash64
from repro.util.stats import RunningStats, z_for_confidence


class ExpectationResult:
    """Outcome of the expectation operator.

    ``mean`` is NaN when the context is unsatisfiable (the paper's NAN
    convention) or carries zero probability mass.  ``probability`` is None
    unless requested.  ``methods`` maps a short description of each
    independent group to the technique used (for tests and ablations).
    """

    __slots__ = (
        "mean",
        "probability",
        "n_samples",
        "stderr",
        "variance",
        "exact_mean",
        "exact_probability",
        "methods",
    )

    def __init__(
        self,
        mean,
        probability=None,
        n_samples=0,
        stderr=math.nan,
        variance=math.nan,
        exact_mean=False,
        exact_probability=False,
        methods=None,
    ):
        self.mean = mean
        self.probability = probability
        self.n_samples = n_samples
        self.stderr = stderr
        self.variance = variance
        self.exact_mean = exact_mean
        self.exact_probability = exact_probability
        self.methods = methods or {}

    @property
    def is_nan(self):
        return self.mean != self.mean

    def __repr__(self):
        return "ExpectationResult(mean=%.6g, p=%s, n=%d)" % (
            self.mean,
            "%.6g" % self.probability if self.probability is not None else "-",
            self.n_samples,
        )


def _nan_result(probability, methods=None):
    return ExpectationResult(
        math.nan,
        probability=probability,
        exact_probability=True,
        methods=methods or {},
    )


class ExpectationEngine:
    """Stateless façade around the Algorithm 4.3 machinery.

    A single engine carries default options and a base seed.  Without a
    bank attached, every public call derives a fresh deterministic RNG from
    its arguments so repeated runs reproduce and "there is no bias from
    samples shared between multiple query runs" (Section III-A) — each
    invocation samples anew, with independent Monte Carlo error.

    With a :class:`~repro.samplebank.SampleBank` attached (as
    :class:`~repro.core.database.PIPDatabase` does by default), per-group
    conditional samples are instead served from the bank's persistent
    bundles: rows and queries that re-derive the same independent group
    reuse one sample matrix.  Estimates stay unbiased and seed-determined
    (the bundle's stream is a pure function of the base seed and group),
    but repeated runs replay the same draws — their errors are correlated
    rather than independent, so re-running a query does not average error
    away.  Callers that need fresh streams pass an explicit ``seed`` or
    ``use_sample_bank=False``, both of which bypass the bank.
    """

    def __init__(self, options=None, base_seed=0, bank=None, scheduler=None):
        self.options = options or DEFAULT_OPTIONS
        self.base_seed = base_seed
        self.bank = bank
        # Optional ParallelSampleScheduler; when present (and the options
        # ask for workers) prefetch() fans group sampling out over it.
        self.scheduler = scheduler

    # -- public API ------------------------------------------------------------

    def expectation(self, expr, condition, want_probability=False, seed=None, options=None):
        """E[expr | condition], optionally with P[condition].

        ``expr`` may be any equation; ``condition`` a Conjunction (typical)
        or a DNF Disjunction (then treated as one joint group).
        """
        options = self._per_call_options(options, seed)
        expr = as_expression(expr)
        rng = self._rng(seed, "expectation", expr, condition)

        if condition.is_false:
            return _nan_result(0.0 if want_probability else None)

        consistency = check_consistency(condition)
        if consistency.is_inconsistent:
            # Strong proofs and measure-zero conditions alike: the row
            # exists with probability zero, so the expectation is NAN.
            return _nan_result(0.0 if want_probability else None)

        expr_vars = expr.variables()
        groups = groups_for_condition(condition, extra_variables=expr_vars)
        if not options.use_independence and groups:
            groups = self._merge_groups(groups)

        expr_keys = frozenset(v.key for v in expr_vars)
        sampled_groups = []
        prob_only_groups = []
        methods = {}
        for group in groups:
            if group.variable_keys & expr_keys:
                sampled_groups.append(group)
            elif group.atoms:
                prob_only_groups.append(group)
            # unconstrained groups without expression variables contribute
            # nothing to either the mean or the probability.

        # -- mean --------------------------------------------------------
        if not sampled_groups:
            # Expression is constant given the condition's consistency.
            if expr.is_constant:
                mean = float(expr.const_value())
                stats = None
                exact_mean = True
                n_used = 0
            else:
                raise PIPError(
                    "expression %r has variables but no sampling group" % (expr,)
                )
        else:
            exact = self._try_exact_linear(expr, sampled_groups, options)
            tag = "exact-linear"
            if exact is None:
                exact = self._try_exact_truncated(
                    expr, sampled_groups, consistency, options
                )
                tag = "exact-truncated"
            if exact is not None:
                mean = exact
                stats = None
                exact_mean = True
                n_used = 0
                for group in sampled_groups:
                    methods[_group_tag(group)] = tag
            else:
                outcome = self._sample_mean(
                    expr, condition, sampled_groups, consistency, rng, options, methods
                )
                if outcome is None:
                    return _nan_result(0.0 if want_probability else None, methods)
                mean, stats, samplers = outcome
                exact_mean = False
                n_used = stats.count

        # -- probability ----------------------------------------------------
        probability = None
        exact_probability = False
        if want_probability:
            probability = 1.0
            exact_probability = True
            all_prob_groups = [g for g in groups if g.atoms]
            sampler_by_group = {}
            if not exact_mean and sampled_groups and stats is not None:
                sampler_by_group = {id(g): s for g, s in samplers.items()}
            for group in all_prob_groups:
                p_group, exact_group = self._group_probability(
                    group,
                    condition,
                    consistency,
                    rng,
                    options,
                    existing_sampler=sampler_by_group.get(id(group)),
                    methods=methods,
                )
                probability *= p_group
                exact_probability = exact_probability and exact_group
            if probability == 0.0:
                return _nan_result(0.0, methods)

        if stats is None:
            return ExpectationResult(
                mean,
                probability=probability,
                n_samples=0,
                stderr=0.0,
                variance=0.0,
                exact_mean=exact_mean,
                exact_probability=exact_probability,
                methods=methods,
            )
        return ExpectationResult(
            mean,
            probability=probability,
            n_samples=n_used,
            stderr=stats.stderr,
            variance=stats.variance,
            exact_mean=False,
            exact_probability=exact_probability,
            methods=methods,
        )

    def probability(self, condition, seed=None, options=None):
        """P[condition] — the paper's ``conf()``.  Returns (value, exact)."""
        options = self._per_call_options(options, seed)
        rng = self._rng(seed, "conf", None, condition)
        if condition.is_false:
            return 0.0, True
        if condition.is_true:
            return 1.0, True
        consistency = check_consistency(condition)
        if consistency.is_inconsistent:
            return 0.0, True
        groups = [g for g in groups_for_condition(condition) if g.atoms]
        if not options.use_independence and groups:
            groups = self._merge_groups(groups)
        probability = 1.0
        exact = True
        methods = {}
        for group in groups:
            p_group, exact_group = self._group_probability(
                group, condition, consistency, rng, options, methods=methods
            )
            probability *= p_group
            exact = exact and exact_group
            if probability == 0.0:
                return 0.0, exact
        return probability, exact

    def sample_expression(self, expr, condition, n, seed=None, options=None):
        """``n`` conditional samples of ``expr`` (the ``*_hist`` operators).

        Returns a float ndarray, or None when the condition is
        unsatisfiable.
        """
        options = self._per_call_options(options, seed).replace(n_samples=n)
        expr = as_expression(expr)
        rng = self._rng(seed, "hist", expr, condition)
        if condition.is_false:
            return None
        consistency = check_consistency(condition)
        if consistency.is_inconsistent:
            return None
        expr_vars = expr.variables()
        groups = groups_for_condition(condition, extra_variables=expr_vars)
        expr_keys = frozenset(v.key for v in expr_vars)
        sampled_groups = [g for g in groups if g.variable_keys & expr_keys]
        if not sampled_groups:
            if expr.is_constant:
                return np.full(n, float(expr.const_value()))
            raise PIPError("expression %r has no sampling group" % (expr,))
        arrays = {}
        for group in sampled_groups:
            sampler = self._make_sampler(group, condition, consistency, rng, options)
            result = sampler.sample(n)
            if result.impossible:
                return None
            arrays.update(result.arrays)
        return np.asarray(expr.evaluate_batch(arrays), dtype=float).reshape(-1)

    # -- parallel prefetch ---------------------------------------------------------

    def prefetch_enabled(self, options=None):
        """Whether :meth:`prefetch` would actually fan out.

        True only with a scheduler attached, a positive resolved worker
        count, and an active sample bank (workers materialise *bank
        bundles*; without the bank there is nothing to hand back).
        Callers use this to skip building task lists on the serial path.
        """
        options = options or self.options
        return (
            self.scheduler is not None
            and self.scheduler.workers_for(options) > 0
            and self._bank_active(options)
        )

    def prefetch(self, tasks, options=None):
        """Pre-materialise the bank bundles a batch of calls will need.

        ``tasks`` is an iterable of ``(expr, condition, want_probability)``
        triples — ``expr`` may be ``None`` for probability-only calls
        (``conf``).  For each task this mirrors, without executing, the
        branching of :meth:`expectation` / :meth:`probability`: groups that
        an exact shortcut would handle are skipped, sampled groups get
        *fill* jobs sized like the serial first request, and inexact
        probability groups get *attempt-floor* jobs.  Jobs are planned in
        task order (the serial touch order) and handed to the scheduler;
        returns the number of bundles materialised.

        The subsequent serial calls then find every bundle warm — results
        are bit-identical to a serial run because each bundle is a pure
        function of its key and seed stream.
        """
        if not self.prefetch_enabled(options):
            return 0
        options = options or self.options
        # Cap at what the LRU can hold alongside consumption: overflow
        # groups would be evicted before the serial loop reads them,
        # doubling their sampling cost instead of parallelising it.
        limit = self.bank.prefetch_limit
        jobs = []
        seen = set()
        for expr, condition, want_probability in tasks:
            if len(jobs) >= limit:
                break
            try:
                self._plan_prefetch(
                    expr, condition, want_probability, options, jobs, seen
                )
            except PIPError:
                # The serial call will surface the real error with full
                # context; prefetch must never mask or pre-empt it.
                continue
        if not jobs:
            return 0
        return self.scheduler.prefetch(jobs[:limit], options)

    def _plan_prefetch(self, expr, condition, want_probability, options, jobs, seen):
        """Append the jobs one serial call would materialise first."""
        if condition.is_false or (expr is None and condition.is_true):
            return
        consistency = check_consistency(condition)
        if consistency.is_inconsistent:
            return

        if expr is None:
            # conf(): probability-only over every constrained group.
            groups = [g for g in groups_for_condition(condition) if g.atoms]
            if not options.use_independence and groups:
                groups = self._merge_groups(groups)
            for group in groups:
                self._plan_prob_job(group, condition, consistency, options, jobs, seen)
            return

        expr = as_expression(expr)
        expr_vars = expr.variables()
        groups = groups_for_condition(condition, extra_variables=expr_vars)
        if not options.use_independence and groups:
            groups = self._merge_groups(groups)
        expr_keys = frozenset(v.key for v in expr_vars)
        sampled_groups = [g for g in groups if g.variable_keys & expr_keys]

        mean_sampled = False
        if sampled_groups:
            exact = self._try_exact_linear(expr, sampled_groups, options)
            if exact is None:
                exact = self._try_exact_truncated(
                    expr, sampled_groups, consistency, options
                )
            if exact is None:
                mean_sampled = True
                round_size = options.n_samples or max(options.min_samples, 128)
                for group in sampled_groups:
                    self._plan_fill_job(
                        group, condition, consistency, options, round_size, jobs, seen
                    )

        if want_probability:
            for group in groups:
                if not group.atoms:
                    continue
                if mean_sampled and group in sampled_groups:
                    # The mean fill's rejection bookkeeping yields the
                    # probability for free (Algorithm 4.3 line 29).
                    continue
                self._plan_prob_job(group, condition, consistency, options, jobs, seen)

    def _plan_fill_job(self, group, condition, consistency, options, round_size, jobs, seen):
        job = self.bank.plan_group_job(
            group, condition, consistency, options, fill_n=round_size
        )
        if job is not None and job.key not in seen:
            seen.add(job.key)
            jobs.append(job)

    def _plan_prob_job(self, group, condition, consistency, options, jobs, seen):
        if options.use_exact_probability and not isinstance(condition, Disjunction):
            if self._exact_group_probability(group, consistency) is not None:
                return
        minimum = max(4 * options.batch_size, 4096)
        job = self.bank.plan_group_job(
            group, condition, consistency, options, min_attempts=minimum
        )
        if job is not None and job.key not in seen:
            seen.add(job.key)
            jobs.append(job)

    # -- internals ----------------------------------------------------------------

    def _per_call_options(self, options, seed):
        """Resolve options, bypassing the sample bank for explicit seeds.

        A caller-supplied seed asks for *that* draw stream; serving cached
        bank draws (keyed by the base seed) would silently ignore it.
        """
        options = options or self.options
        if seed is not None and options.use_sample_bank:
            options = options.replace(use_sample_bank=False)
        return options

    def _rng(self, seed, tag, expr, condition):
        if seed is None:
            parts = [self.base_seed, tag]
            if expr is not None:
                parts.append(repr(expr))
            parts.append(repr(condition))
            seed = stable_hash64(*[str(p) for p in parts])
        return rng_from_seed(seed)

    @staticmethod
    def _merge_groups(groups):
        """Ablation: collapse all groups into one joint group."""
        from repro.constraints.independence import VariableGroup

        variables = {}
        atoms = []
        for group in groups:
            for variable in group.variables:
                variables[variable.key] = variable
            atoms.extend(group.atoms)
        return [VariableGroup(variables.values(), atoms)]

    @staticmethod
    def _group_predicate(group, condition):
        """The acceptance test a group's candidates must pass.

        Conjunctions: just this group's atoms.  DNF: the full condition
        (there is only one group in that case).
        """
        if isinstance(condition, Disjunction):
            return lambda arrays: condition.evaluate_batch(arrays)
        atoms = group.atoms
        if not atoms:
            return lambda arrays: np.asarray(True)
        conjunction = Conjunction(atoms)
        return lambda arrays: conjunction.evaluate_batch(arrays)

    def _bank_active(self, options):
        return (
            self.bank is not None and self.bank.enabled and options.use_sample_bank
        )

    def _make_sampler(self, group, condition, consistency, rng, options):
        predicate = self._group_predicate(group, condition)
        if self._bank_active(options):
            return self.bank.source(group, condition, consistency, predicate, options)
        return GroupSampler(
            group,
            consistency.bounds,
            predicate,
            rng,
            options,
        )

    def _try_exact_linear(self, expr, sampled_groups, options):
        """Closed-form mean for affine expressions over *unconstrained*
        variables with known means.  Returns the mean or None."""
        if not options.use_exact_linear:
            return None
        if any(group.atoms for group in sampled_groups):
            return None
        linear = expr.linear_form()
        if linear is None:
            return None
        coeffs, constant = linear
        by_key = {}
        for group in sampled_groups:
            for variable in group.variables:
                by_key[variable.key] = variable
        total = constant
        for key, coeff in coeffs.items():
            variable = by_key.get(key)
            if variable is None:
                return None
            marginal = variable.marginal()
            if marginal is None:
                return None
            dist, params = marginal
            if not dist.has("mean"):
                return None
            mean = dist.mean(params)
            if not math.isfinite(mean):
                return None
            total += coeff * mean
        return float(total)

    def _try_exact_truncated(self, expr, sampled_groups, consistency, options):
        """Closed-form conditional mean for affine expressions over
        *independently constrained single-variable* groups.

        E[Σ aᵢXᵢ + b | C] = Σ aᵢ·E[Xᵢ | Kᵢ] + b when each Xᵢ sits in its
        own group: continuous groups use ``Distribution.mean_in`` over the
        tightened interval, discrete ones enumerate their domain.  This is
        the opt-in Section III-D "advanced methods" path.
        """
        if not options.use_exact_truncated:
            return None
        linear = expr.linear_form()
        if linear is None:
            return None
        coeffs, constant = linear
        group_by_key = {}
        for group in sampled_groups:
            if len(group.variables) != 1:
                # Multi-variable group touching the expression: no closed form.
                if group.variable_keys & set(coeffs):
                    return None
                continue
            group_by_key[group.variables[0].key] = group
        total = constant
        for key, coeff in coeffs.items():
            group = group_by_key.get(key)
            if group is None:
                return None
            conditional = self._exact_group_mean(group, consistency)
            if conditional is None or conditional != conditional:
                return None
            total += coeff * conditional
        return float(total)

    def _exact_group_mean(self, group, consistency):
        """E[X | K] for a single-variable group, or None."""
        variable = group.variables[0]
        marginal = variable.marginal()
        if marginal is None:
            return None
        dist, params = marginal
        if not group.atoms:
            return dist.mean(params) if dist.has("mean") else None
        if dist.is_discrete:
            if not dist.has("domain"):
                return None
            weighted = 0.0
            mass = 0.0
            for value, probability in dist.domain(params):
                assignment = {variable.key: value}
                if all(atom.evaluate(assignment) for atom in group.atoms):
                    weighted += value * probability
                    mass += probability
            if mass <= 0.0:
                return None
            return weighted / mass
        # Continuous: the interval must capture the atoms exactly — linear
        # single-variable atoms always do; polynomial ones only when their
        # solution set is a single segment (convex).
        if not self._atoms_exactly_intervaled(group.atoms, variable.key):
            return None
        if not dist.has("mean_in"):
            return None
        return dist.mean_in(params, consistency.bound_for(variable.key))

    @staticmethod
    def _atoms_exactly_intervaled(atoms, variable_key):
        """Whether the atoms' joint solution set over the single variable
        is exactly the tightened interval (no hull over-approximation)."""
        from repro.constraints.polynomials import (
            poly_coefficients,
            solve_polynomial_segments,
        )

        for atom in atoms:
            if atom.op == "<>":
                continue
            linear = atom.linear_form()
            degree = atom.degree()
            if linear is not None and degree is not None and degree <= 1:
                if set(linear[0]) - {variable_key}:
                    return False
                continue
            normal = atom.normalized()
            if normal is None:
                return False
            coeffs = poly_coefficients(normal[0], variable_key)
            if coeffs is None:
                return False
            segments = solve_polynomial_segments(coeffs, normal[1])
            if len(segments) != 1:
                return False
        return True

    def _sample_mean(self, expr, condition, sampled_groups, consistency, rng, options, methods):
        """Adaptive (or fixed-n) conditional sampling of the expression.

        Returns ``(mean, stats, samplers_by_group)`` or None when some
        group is impossible.
        """
        samplers = {}
        for group in sampled_groups:
            samplers[group] = self._make_sampler(
                group, condition, consistency, rng, options
            )

        stats = RunningStats()
        fixed_n = options.n_samples
        target = None if fixed_n else z_for_confidence(options.epsilon)
        round_size = fixed_n or max(options.min_samples, 128)

        while True:
            arrays = {}
            impossible = False
            for group, sampler in samplers.items():
                result = sampler.sample(round_size)
                if result.impossible:
                    impossible = True
                    break
                arrays.update(result.arrays)
                methods[_group_tag(group)] = (
                    "metropolis" if result.used_metropolis else _sampling_tag(sampler)
                )
            if impossible:
                return None
            values = np.asarray(expr.evaluate_batch(arrays), dtype=float).reshape(-1)
            if values.shape == (1,) and round_size > 1:
                values = np.full(round_size, values[0])
            stats.update_batch(values)

            if fixed_n:
                break
            if stats.count >= options.max_samples:
                break
            mean = stats.mean
            # Algorithm 4.3 line 12: stop once the (1-ε) CI half-width is
            # within δ of the (relative) mean.
            half_width = target * stats.stderr
            tolerance = options.delta * max(abs(mean), 1e-9)
            if stats.count >= options.min_samples and half_width <= tolerance:
                break
            round_size = min(
                max(round_size, options.batch_size), options.max_samples - stats.count
            )
        return stats.mean, stats, samplers

    def _group_probability(
        self,
        group,
        condition,
        consistency,
        rng,
        options,
        existing_sampler=None,
        methods=None,
    ):
        """P[K] for one group: exact via CDF/domain when possible, else the
        sampler's acceptance bookkeeping (Algorithm 4.3 lines 29-35)."""
        methods = methods if methods is not None else {}
        tag = _group_tag(group)
        if options.use_exact_probability and not isinstance(condition, Disjunction):
            exact = self._exact_group_probability(group, consistency)
            if exact is not None:
                methods[tag + ":prob"] = "exact-cdf"
                return exact, True
        sampler = existing_sampler
        if sampler is None or not sampler.can_estimate_probability:
            # Metropolis provides no rate: re-integrate without it (line 34).
            # Bank sources estimate rejection-only internally, so they keep
            # the caller's options (and therefore share the mean-path key).
            if not self._bank_active(options):
                options = options.replace(use_metropolis=False)
            sampler = self._make_sampler(group, condition, consistency, rng, options)
        # The free estimate (Algorithm 4.3 line 29) is only taken when this
        # call's mean sampling produced the bookkeeping; a standalone conf()
        # always drives the trial count to the floor — including on a warm
        # bank bundle, whose cached counters may come from a short mean run.
        estimate = (
            sampler.probability_estimate_or_none()
            if sampler is existing_sampler
            else None
        )
        if estimate is None:
            minimum = max(4 * options.batch_size, 4096)
            estimate = sampler.estimate_probability(minimum)
        methods[tag + ":prob"] = "sampled"
        return estimate, False

    def _exact_group_probability(self, group, consistency):
        """Exact P[K] for single-variable groups.

        Continuous: all atoms linear in the one variable — the satisfying
        set is exactly the tightened interval, integrable with two CDF
        evaluations.  Discrete: enumerate the (finite/truncated) domain.
        """
        if len(group.variables) != 1:
            return None
        variable = group.variables[0]
        marginal = variable.marginal()
        if marginal is None:
            return None
        dist, params = marginal
        if dist.is_discrete:
            if not dist.has("domain"):
                return None
            total = 0.0
            for value, mass in dist.domain(params):
                assignment = {variable.key: value}
                if all(atom.evaluate(assignment) for atom in group.atoms):
                    total += mass
            return min(1.0, total)
        # Continuous: the tightened interval must be the exact solution
        # set (linear atoms, or convex polynomial ones).
        if not self._atoms_exactly_intervaled(group.atoms, variable.key):
            return None
        if not dist.has("cdf"):
            return None
        interval = consistency.bound_for(variable.key)
        return dist.probability_in(params, interval)


def _group_tag(group):
    return "+".join(repr(v) for v in group.variables)


def _sampling_tag(sampler):
    layout = getattr(sampler, "layout", None)
    if layout is None:
        # A sample-bank source: the draws came out of a cached bundle.
        return "bank"
    strategies = {slot.strategy for slot in layout.univariate_slots}
    if layout.family_slots:
        strategies.add("joint")
    if "cdf" in strategies:
        return "cdf-inversion"
    if strategies == {"fixed"}:
        return "fixed"
    return "rejection"
