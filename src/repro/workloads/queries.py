"""The paper's evaluation queries (Section VI), on both engines.

Each query class exposes:

* ``prepare(data)``      — deterministic preprocessing shared by engines,
* ``run_pip(...)``       — build the c-table (query phase) then apply the
  sampling operator (sample phase); returns a :class:`QueryRun`,
* ``run_samplefirst(...)`` — the tuple-bundle evaluation,
* ``truth(...)``         — algebraic ground truth where one exists.

Queries follow the paper's descriptions:

Q1  Poisson-modelled purchase increase per customer; expected extra
    revenue for the coming year (expected_sum).
Q2  Normal manufacturing + shipping times per part from a Japanese
    supplier; expected completion date of the whole order (expected_max).
Q3  Q1 ⋈ Q2: expected profit lost to dissatisfied customers — customers
    whose delivery time exceeds their satisfaction threshold (selectivity
    ≈ 0.1); the shipping-parameter view is pre-materialised.
Q4  Predicted per-part sales under a Poisson increase and an Exponential
    popularity multiplier, restricted to the extreme-popularity scenario
    (selectivity e^-5.29 ≈ 0.005); GROUP BY part (per-part expected_sum).
Q5  Supplier underproduction: Exponential supply vs Poisson demand, in
    worlds where demand exceeds supply (average selectivity ≈ 0.05) — the
    two-variable comparison that forces rejection sampling.
"""

import math
import time

import numpy as np
from scipy import stats as sps

from repro.core import operators as ops
from repro.ctables.table import CTable
from repro.samplefirst.aggregates import (
    sf_expected_max,
    sf_expected_sum,
    sf_row_expectation,
)
from repro.samplefirst.engine import SampleFirstDatabase
from repro.samplefirst.table import SFTable
from repro.sampling.options import SamplingOptions
from repro.symbolic.conditions import TRUE, conjunction_of
from repro.symbolic.expression import var
from repro.workloads import tpch


class QueryRun:
    """Outcome of one engine run: estimate(s) plus phase timings."""

    __slots__ = ("estimate", "per_group", "query_time", "sample_time")

    def __init__(self, estimate, per_group=None, query_time=0.0, sample_time=0.0):
        self.estimate = estimate
        self.per_group = per_group or {}
        self.query_time = query_time
        self.sample_time = sample_time

    @property
    def total_time(self):
        return self.query_time + self.sample_time

    def __repr__(self):
        return "QueryRun(%.6g, query=%.3fs, sample=%.3fs)" % (
            self.estimate if self.estimate == self.estimate else float("nan"),
            self.query_time,
            self.sample_time,
        )


# ---------------------------------------------------------------------------
# Q1 — expected revenue increase (expected_sum)
# ---------------------------------------------------------------------------


class Q1:
    """Poisson purchase-increase model, summed over customers."""

    @staticmethod
    def prepare(data):
        return tpch.customer_order_stats(data)

    @staticmethod
    def truth(stats):
        return sum(avg_price * growth for _c, _n, growth, avg_price in stats)

    @staticmethod
    def run_pip(stats, seed=0, options=None):
        from repro.core.database import PIPDatabase

        options = options or SamplingOptions(n_samples=1000)
        db = PIPDatabase(seed=seed, options=options)
        start = time.perf_counter()
        table = CTable(
            [("custkey", "int"), ("extra_revenue", "any")], name="q1"
        )
        for custkey, _n, growth, avg_price in stats:
            increase = db.create_variable("poisson", (growth,))
            table.add_row((custkey, var(increase) * avg_price))
        query_time = time.perf_counter() - start

        start = time.perf_counter()
        result = ops.expected_sum(
            table, "extra_revenue", engine=db.engine, options=options
        )
        sample_time = time.perf_counter() - start
        return QueryRun(result.value, query_time=query_time, sample_time=sample_time)

    @staticmethod
    def run_samplefirst(stats, n_worlds=1000, seed=0):
        start = time.perf_counter()
        sfdb = SampleFirstDatabase(n_worlds=n_worlds, seed=seed)
        table = SFTable(
            [("custkey", "int"), ("extra_revenue", "any")], n_worlds, name="q1"
        )
        for custkey, _n, growth, avg_price in stats:
            increase = sfdb.create_variable("poisson", (growth,))
            table.add_row((custkey, increase * avg_price))
        result = sf_expected_sum(table, "extra_revenue")
        elapsed = time.perf_counter() - start
        return QueryRun(result.value, query_time=elapsed, sample_time=0.0)


# ---------------------------------------------------------------------------
# Q2 — expected completion date of an order (expected_max)
# ---------------------------------------------------------------------------


class Q2:
    """Normal manufacture + shipping delivery model; max over parts."""

    MANUFACTURE = (10.0, 2.0)  # mean, std (days)
    SHIPPING = (7.0, 1.5)

    @staticmethod
    def prepare(data, limit=None):
        return tpch.japanese_supplier_parts(data, limit=limit)

    @classmethod
    def reference(cls, parts, n=200000, seed=12345):
        """High-n Monte Carlo reference (no closed form for max of sums)."""
        rng = np.random.default_rng(seed)
        mu_m, s_m = cls.MANUFACTURE
        mu_s, s_s = cls.SHIPPING
        best = np.full(n, -np.inf)
        for _partkey, _price, quantity in parts:
            lead = quantity / 25.0
            samples = rng.normal(mu_m + lead, s_m, n) + rng.normal(mu_s, s_s, n)
            best = np.fmax(best, samples)
        return float(best.mean()) if len(parts) else 0.0

    @classmethod
    def run_pip(cls, parts, seed=0, n_worlds=1000):
        from repro.core.database import PIPDatabase

        db = PIPDatabase(seed=seed)
        mu_m, s_m = cls.MANUFACTURE
        mu_s, s_s = cls.SHIPPING
        start = time.perf_counter()
        table = CTable([("partkey", "int"), ("delivery", "any")], name="q2")
        for partkey, _price, quantity in parts:
            lead = quantity / 25.0
            manufacture = db.create_variable("normal", (mu_m + lead, s_m))
            shipping = db.create_variable("normal", (mu_s, s_s))
            table.add_row((partkey, var(manufacture) + var(shipping)))
        query_time = time.perf_counter() - start

        start = time.perf_counter()
        result = ops.expected_max(
            table, "delivery", engine=db.engine, n_worlds=n_worlds
        )
        sample_time = time.perf_counter() - start
        return QueryRun(result.value, query_time=query_time, sample_time=sample_time)

    @classmethod
    def run_samplefirst(cls, parts, n_worlds=1000, seed=0):
        start = time.perf_counter()
        sfdb = SampleFirstDatabase(n_worlds=n_worlds, seed=seed)
        mu_m, s_m = cls.MANUFACTURE
        mu_s, s_s = cls.SHIPPING
        table = SFTable([("partkey", "int"), ("delivery", "any")], n_worlds, name="q2")
        for partkey, _price, quantity in parts:
            lead = quantity / 25.0
            manufacture = sfdb.create_variable("normal", (mu_m + lead, s_m))
            shipping = sfdb.create_variable("normal", (mu_s, s_s))
            table.add_row((partkey, manufacture + shipping))
        result = sf_expected_max(table, "delivery")
        elapsed = time.perf_counter() - start
        return QueryRun(result.value, query_time=elapsed, sample_time=0.0)


# ---------------------------------------------------------------------------
# Q3 — profit lost to dissatisfied customers (selective join)
# ---------------------------------------------------------------------------


class Q3:
    """Q1's profit model restricted to customers whose (Normal) delivery
    time exceeds their satisfaction threshold.

    ``selectivity`` fixes P[dissatisfied] per customer by placing the
    threshold at the matching Normal quantile — the paper's setup where
    "an average of 10% of customers were dissatisfied".
    """

    DELIVERY_STD = 3.0

    @classmethod
    def prepare(cls, data, selectivity=0.1):
        """Join Q1 stats with per-customer delivery parameters.

        The delivery mean/std view is the pre-materialised component the
        paper mentions; here it is the deterministic row payload.
        """
        stats = tpch.customer_order_stats(data)
        rows = []
        z = float(sps.norm.ppf(1.0 - selectivity))
        for custkey, n_recent, growth, avg_price in stats:
            mu = 12.0 + (custkey % 7)  # per-customer expected delivery time
            threshold = mu + z * cls.DELIVERY_STD
            rows.append((custkey, growth, avg_price, mu, threshold))
        return rows

    @staticmethod
    def truth(rows, selectivity=0.1):
        return sum(avg * growth * selectivity for _c, growth, avg, _m, _t in rows)

    @classmethod
    def run_pip(cls, rows, seed=0, options=None):
        from repro.core.database import PIPDatabase

        options = options or SamplingOptions(n_samples=1000)
        db = PIPDatabase(seed=seed, options=options)
        start = time.perf_counter()
        table = CTable([("custkey", "int"), ("profit", "any")], name="q3")
        for custkey, growth, avg_price, mu, threshold in rows:
            increase = db.create_variable("poisson", (growth,))
            delivery = db.create_variable("normal", (mu, cls.DELIVERY_STD))
            condition = conjunction_of(var(delivery) > threshold)
            table.add_row((custkey, var(increase) * avg_price), condition)
        query_time = time.perf_counter() - start

        start = time.perf_counter()
        result = ops.expected_sum(table, "profit", engine=db.engine, options=options)
        sample_time = time.perf_counter() - start
        return QueryRun(result.value, query_time=query_time, sample_time=sample_time)

    @classmethod
    def run_samplefirst(cls, rows, n_worlds=1000, seed=0):
        start = time.perf_counter()
        sfdb = SampleFirstDatabase(n_worlds=n_worlds, seed=seed)
        table = SFTable([("custkey", "int"), ("profit", "any")], n_worlds, name="q3")
        for custkey, growth, avg_price, mu, threshold in rows:
            increase = sfdb.create_variable("poisson", (growth,))
            delivery = sfdb.create_variable("normal", (mu, cls.DELIVERY_STD))
            presence = delivery.values > threshold
            table.add_row((custkey, increase * avg_price), presence)
        result = sf_expected_sum(table, "profit")
        elapsed = time.perf_counter() - start
        return QueryRun(result.value, query_time=elapsed, sample_time=0.0)


# ---------------------------------------------------------------------------
# Q4 — per-part predicted sales in the extreme-popularity scenario
# ---------------------------------------------------------------------------


class Q4:
    """Poisson increase × Exponential popularity, popularity > threshold.

    ``selectivity`` is exactly ``exp(-threshold)`` for the unit-rate
    Exponential — the paper's ``e^-5.29 ≈ 0.005``.
    """

    @staticmethod
    def threshold_for(selectivity):
        return -math.log(selectivity)

    @staticmethod
    def prepare(data, limit=None):
        """Per-part rows ``(partkey, retailprice, poisson_rate)``."""
        rows = []
        for partkey, _name, price in data.part[: limit if limit else None]:
            rate = 1.0 + (partkey % 5) * 0.5
            rows.append((partkey, price, rate))
        return rows

    @staticmethod
    def truth(rows, selectivity=0.005):
        """Per-part truth: q·λ·(t+1)·e^-t (memorylessness of Exponential)."""
        t = Q4.threshold_for(selectivity)
        return {
            partkey: price * rate * (t + 1.0) * selectivity
            for partkey, price, rate in rows
        }

    @staticmethod
    def build_pip(rows, selectivity, seed=0, options=None):
        """Query phase: the per-part c-table (one row per part)."""
        from repro.core.database import PIPDatabase

        options = options or SamplingOptions(n_samples=1000)
        db = PIPDatabase(seed=seed, options=options)
        t = Q4.threshold_for(selectivity)
        table = CTable(
            [("partkey", "int"), ("sales", "any")], name="q4"
        )
        for partkey, price, rate in rows:
            increase = db.create_variable("poisson", (rate,))
            popularity = db.create_variable("exponential", (1.0,))
            condition = conjunction_of(var(popularity) > t)
            table.add_row((partkey, var(increase) * var(popularity) * price), condition)
        return db, table

    @staticmethod
    def run_pip(rows, selectivity=0.005, seed=0, options=None):
        options = options or SamplingOptions(n_samples=1000)
        start = time.perf_counter()
        db, table = Q4.build_pip(rows, selectivity, seed=seed, options=options)
        query_time = time.perf_counter() - start

        start = time.perf_counter()
        grouped = ops.grouped_aggregate(
            table, ["partkey"], "expected_sum", "sales",
            engine=db.engine, options=options,
        )
        sample_time = time.perf_counter() - start
        per_part = {row.values[0]: row.values[1] for row in grouped.rows}
        return QueryRun(
            sum(per_part.values()),
            per_group=per_part,
            query_time=query_time,
            sample_time=sample_time,
        )

    @staticmethod
    def run_samplefirst(rows, selectivity=0.005, n_worlds=1000, seed=0):
        t = Q4.threshold_for(selectivity)
        start = time.perf_counter()
        sfdb = SampleFirstDatabase(n_worlds=n_worlds, seed=seed)
        per_part = {}
        for partkey, price, rate in rows:
            increase = sfdb.create_variable("poisson", (rate,))
            popularity = sfdb.create_variable("exponential", (1.0,))
            presence = popularity.values > t
            sales = increase.values * popularity.values * price
            # expected_sum semantics: absent worlds contribute zero.
            per_part[partkey] = float(np.where(presence, sales, 0.0).mean())
        elapsed = time.perf_counter() - start
        return QueryRun(
            sum(per_part.values()),
            per_group=per_part,
            query_time=elapsed,
            sample_time=0.0,
        )


# ---------------------------------------------------------------------------
# Q5 — supplier underproduction (two-variable comparison, rejection)
# ---------------------------------------------------------------------------


class Q5:
    """Exponential supply vs Poisson demand; expected shortfall in worlds
    where demand exceeds supply."""

    @staticmethod
    def prepare(data, selectivity=0.05, limit=None):
        """Per-supplier rows ``(suppkey, demand_rate, supply_rate)``.

        The supply Exponential's rate is solved numerically so that
        P[demand > supply] ≈ ``selectivity`` for each supplier.
        """
        rows = []
        for suppkey, _name, _nation in data.supplier[: limit if limit else None]:
            demand_rate = 2.0 + (suppkey % 4)
            supply_rate = Q5._solve_supply_rate(demand_rate, selectivity)
            rows.append((suppkey, demand_rate, supply_rate))
        return rows

    @staticmethod
    def _solve_supply_rate(lam, selectivity):
        """Find θ with P[D > S] = Σ_d pois(d;λ)(1-e^{-θd}) = selectivity."""
        lo, hi = 1e-9, 50.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if Q5._p_demand_exceeds(lam, mid) > selectivity:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    @staticmethod
    def _p_demand_exceeds(lam, theta):
        total = 0.0
        for d in range(1, int(lam + 12 * math.sqrt(lam) + 20)):
            total += sps.poisson.pmf(d, lam) * (1.0 - math.exp(-theta * d))
        return total

    @staticmethod
    def truth(rows):
        """Σ_supplier E[(D-S)·χ(D>S)] = Σ_d P(d)[d - (1-e^{-θd})/θ]."""
        total = 0.0
        per_supplier = {}
        for suppkey, lam, theta in rows:
            value = 0.0
            for d in range(1, int(lam + 12 * math.sqrt(lam) + 20)):
                value += sps.poisson.pmf(d, lam) * (
                    d - (1.0 - math.exp(-theta * d)) / theta
                )
            per_supplier[suppkey] = value
            total += value
        return total, per_supplier

    @staticmethod
    def run_pip(rows, seed=0, options=None):
        from repro.core.database import PIPDatabase

        options = options or SamplingOptions(n_samples=1000)
        db = PIPDatabase(seed=seed, options=options)
        start = time.perf_counter()
        table = CTable([("suppkey", "int"), ("shortfall", "any")], name="q5")
        for suppkey, lam, theta in rows:
            demand = db.create_variable("poisson", (lam,))
            supply = db.create_variable("exponential", (theta,))
            condition = conjunction_of(var(demand) > var(supply))
            table.add_row((suppkey, var(demand) - var(supply)), condition)
        query_time = time.perf_counter() - start

        start = time.perf_counter()
        grouped = ops.grouped_aggregate(
            table, ["suppkey"], "expected_sum", "shortfall",
            engine=db.engine, options=options,
        )
        sample_time = time.perf_counter() - start
        per_supplier = {row.values[0]: row.values[1] for row in grouped.rows}
        return QueryRun(
            sum(per_supplier.values()),
            per_group=per_supplier,
            query_time=query_time,
            sample_time=sample_time,
        )

    @staticmethod
    def run_samplefirst(rows, n_worlds=1000, seed=0):
        start = time.perf_counter()
        sfdb = SampleFirstDatabase(n_worlds=n_worlds, seed=seed)
        per_supplier = {}
        for suppkey, lam, theta in rows:
            demand = sfdb.create_variable("poisson", (lam,))
            supply = sfdb.create_variable("exponential", (theta,))
            presence = demand.values > supply.values
            shortfall = demand.values - supply.values
            per_supplier[suppkey] = float(np.where(presence, shortfall, 0.0).mean())
        elapsed = time.perf_counter() - start
        return QueryRun(
            sum(per_supplier.values()),
            per_group=per_supplier,
            query_time=elapsed,
            sample_time=0.0,
        )
