"""The iceberg danger-estimation workload (Figure 8).

The paper used four years of the NSIDC International Ice Patrol iceberg
sighting database; that dataset is not bundled here, so a synthetic
generator produces sightings with the same fields the query touches:
last-seen position, and days since the sighting (DESIGN.md §2).

Model (as described in Section VI):

* each iceberg's current position is normally distributed around its last
  sighting, with uncertainty growing with staleness;
* each iceberg carries an exponentially decaying danger level
  ``exp(-decay · days)`` — recent sightings are high-threat, historic
  ones mark potential new positions;
* 100 virtual ships at random positions each ask: which icebergs have
  more than a 0.1% chance of being nearby (a lat/lon box), and what is
  the expected total threat?

PIP answers *exactly*: the box probability of two independent Normals is
four CDF evaluations, so the per-ship threat is a finite sum of closed
forms.  Sample-First must estimate every box probability from its
committed worlds — the error CDF of Figure 8.
"""

import math
import time

import numpy as np

from repro.ctables.table import CTable
from repro.samplefirst.engine import SampleFirstDatabase
from repro.sampling.confidence import conf
from repro.sampling.expectation import ExpectationEngine
from repro.symbolic.conditions import conjunction_of
from repro.symbolic.expression import var

# North Atlantic bounding box (degrees).
LAT_RANGE = (40.0, 65.0)
LON_RANGE = (-60.0, -20.0)


class IcebergData:
    """Synthetic sightings + virtual ships."""

    def __init__(self, sightings, ships):
        self.sightings = sightings  # (iceberg_id, lat, lon, days_since)
        self.ships = ships  # (ship_id, lat, lon)


def generate_iceberg(n_icebergs=80, n_ships=40, seed=11, max_days=1460):
    """Deterministic synthetic instance (4 years of sightings by default)."""
    rng = np.random.default_rng(seed)
    sightings = []
    for i in range(n_icebergs):
        sightings.append(
            (
                i + 1,
                float(rng.uniform(*LAT_RANGE)),
                float(rng.uniform(*LON_RANGE)),
                float(rng.uniform(0.0, max_days)),
            )
        )
    ships = []
    for s in range(n_ships):
        ships.append(
            (
                s + 1,
                float(rng.uniform(*LAT_RANGE)),
                float(rng.uniform(*LON_RANGE)),
            )
        )
    return IcebergData(sightings, ships)


def position_std(days):
    """Positional drift grows with staleness (degrees)."""
    return 0.05 + 0.002 * days


def danger_level(days, decay=0.002):
    """Exponentially decaying threat of a sighting ``days`` old."""
    return math.exp(-decay * days)


def exact_ship_threat(data, ship, radius=1.0, decay=0.002, min_conf=0.001):
    """Closed-form per-ship threat (the independent ground truth).

    ``Σ danger_i · P[|lat_i - lat_s| < r] · P[|lon_i - lon_s| < r]`` over
    icebergs whose box probability exceeds ``min_conf``.
    """
    from scipy.stats import norm

    _sid, ship_lat, ship_lon = ship
    total = 0.0
    for _iid, lat, lon, days in data.sightings:
        sigma = position_std(days)
        p_lat = norm.cdf(ship_lat + radius, lat, sigma) - norm.cdf(
            ship_lat - radius, lat, sigma
        )
        p_lon = norm.cdf(ship_lon + radius, lon, sigma) - norm.cdf(
            ship_lon - radius, lon, sigma
        )
        probability = float(p_lat * p_lon)
        if probability > min_conf:
            total += danger_level(days, decay) * probability
    return total


def run_pip(data, radius=1.0, decay=0.002, min_conf=0.001, seed=0):
    """PIP evaluation: exact CDF integration per (ship, iceberg) pair.

    Returns ``(per_ship_threats, elapsed_seconds)``; every value is exact
    (the engine's conf() takes the single-variable CDF path).
    """
    from repro.core.database import PIPDatabase

    db = PIPDatabase(seed=seed)
    engine = db.engine
    start = time.perf_counter()

    # Query phase: per-iceberg position variables (shared across ships —
    # the same iceberg threatens every ship with consistent uncertainty).
    iceberg_rows = []
    for iid, lat, lon, days in data.sightings:
        sigma = position_std(days)
        lat_var = db.create_variable("normal", (lat, sigma))
        lon_var = db.create_variable("normal", (lon, sigma))
        iceberg_rows.append((iid, lat_var, lon_var, days))

    threats = {}
    for ship_id, ship_lat, ship_lon in data.ships:
        total = 0.0
        for _iid, lat_var, lon_var, days in iceberg_rows:
            condition = conjunction_of(
                var(lat_var) > ship_lat - radius,
                var(lat_var) < ship_lat + radius,
                var(lon_var) > ship_lon - radius,
                var(lon_var) < ship_lon + radius,
            )
            result = conf(condition, engine=engine)
            if result.probability > min_conf:
                total += danger_level(days, decay) * result.probability
        threats[ship_id] = total
    elapsed = time.perf_counter() - start
    return threats, elapsed


def run_samplefirst(data, n_worlds=1000, radius=1.0, decay=0.002, min_conf=0.001, seed=0):
    """Sample-First evaluation: box probabilities from committed worlds."""
    sfdb = SampleFirstDatabase(n_worlds=n_worlds, seed=seed)
    start = time.perf_counter()
    iceberg_rows = []
    for iid, lat, lon, days in data.sightings:
        sigma = position_std(days)
        lat_bundle = sfdb.create_variable("normal", (lat, sigma))
        lon_bundle = sfdb.create_variable("normal", (lon, sigma))
        iceberg_rows.append((iid, lat_bundle.values, lon_bundle.values, days))

    threats = {}
    for ship_id, ship_lat, ship_lon in data.ships:
        total = 0.0
        for _iid, lats, lons, days in iceberg_rows:
            near = (
                (lats > ship_lat - radius)
                & (lats < ship_lat + radius)
                & (lons > ship_lon - radius)
                & (lons < ship_lon + radius)
            )
            probability = float(near.mean())
            if probability > min_conf:
                total += danger_level(days, decay) * probability
        threats[ship_id] = total
    elapsed = time.perf_counter() - start
    return threats, elapsed


def error_distribution(estimates, truths):
    """Per-ship |relative error|, sorted ascending — the Figure 8 curve.

    Ships whose true threat is ~zero are skipped (no meaningful relative
    error), matching the paper's plot over threatened ships.
    """
    errors = []
    for ship_id, truth in truths.items():
        if truth <= 1e-9:
            continue
        estimate = estimates.get(ship_id, 0.0)
        errors.append(abs(estimate - truth) / truth)
    errors.sort()
    return errors
