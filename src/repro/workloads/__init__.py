"""Workloads: the paper's evaluation data and queries."""

from repro.workloads.tpch import (
    TpchData,
    generate_tpch,
    load_pip,
    load_samplefirst,
    customer_order_stats,
    japanese_supplier_parts,
)
from repro.workloads.queries import Q1, Q2, Q3, Q4, Q5, QueryRun
from repro.workloads.iceberg import (
    IcebergData,
    generate_iceberg,
    exact_ship_threat,
    run_pip as iceberg_run_pip,
    run_samplefirst as iceberg_run_samplefirst,
    error_distribution,
)

__all__ = [
    "TpchData",
    "generate_tpch",
    "load_pip",
    "load_samplefirst",
    "customer_order_stats",
    "japanese_supplier_parts",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "QueryRun",
    "IcebergData",
    "generate_iceberg",
    "exact_ship_threat",
    "iceberg_run_pip",
    "iceberg_run_samplefirst",
    "error_distribution",
]
