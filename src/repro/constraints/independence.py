"""Minimal independent subsets (Section IV-A(c)).

"Prior to sampling, PIP subdivides constraint predicates into minimal
independent subsets; sets of predicates sharing no common variables. […]
variables representing distinct values from a multivariate distribution are
treated as the set of all of their component variables."

A *group* is a connected component of the bipartite atom/variable graph,
where all components of one multivariate family count as a single vertex.
Variables that appear in the measured expression but in no constraint atom
form unconstrained singleton groups, so the expectation operator can sample
them without any rejection at all.
"""

from repro.util.unionfind import UnionFind


class VariableGroup:
    """One minimal independent subset: variables plus the atoms touching them."""

    __slots__ = ("variables", "atoms")

    def __init__(self, variables, atoms):
        self.variables = tuple(sorted(variables, key=lambda v: v.key))
        self.atoms = tuple(atoms)

    @property
    def variable_keys(self):
        return frozenset(v.key for v in self.variables)

    @property
    def is_unconstrained(self):
        return not self.atoms

    def mentions_any(self, variable_keys):
        """Whether the group contains any of the given variable keys."""
        return bool(self.variable_keys & variable_keys)

    def __repr__(self):
        return "VariableGroup(vars=%r, %d atoms)" % (
            [repr(v) for v in self.variables],
            len(self.atoms),
        )


def _family_token(variable):
    """Union-find vertex for a variable.

    Components of a multivariate family are only separable when the
    distribution certifies they are mutually independent; otherwise the
    whole family is one vertex, as the paper requires.
    """
    if variable.is_multivariate:
        dist = variable.distribution
        params = dist.validate_params(variable.params)
        if not dist.components_independent(params):
            return ("fam", variable.vid)
    return ("var", variable.vid, variable.subscript)


def partition_atoms(atoms, extra_variables=()):
    """Split atoms into minimal independent subsets.

    ``atoms`` is an iterable of :class:`~repro.symbolic.atoms.Atom`;
    ``extra_variables`` (e.g. the variables of the expression being
    measured) are added as vertices so that unconstrained variables still
    receive a (rejection-free) group.

    Returns a list of :class:`VariableGroup`, deterministic in order.
    """
    atoms = [a for a in atoms if a.variables()]
    uf = UnionFind()
    atom_vars = []
    all_variables = {}
    for atom in atoms:
        variables = sorted(atom.variables(), key=lambda v: v.key)
        atom_vars.append(variables)
        tokens = [_family_token(v) for v in variables]
        for variable, token in zip(variables, tokens):
            uf.add(token)
            all_variables.setdefault(variable.key, variable)
        for token in tokens[1:]:
            uf.union(tokens[0], token)
    for variable in extra_variables:
        uf.add(_family_token(variable))
        all_variables.setdefault(variable.key, variable)

    # Map each union-find root to its variables and atoms.
    members = {}
    for variable in all_variables.values():
        root = uf.find(_family_token(variable))
        members.setdefault(root, ([], []))[0].append(variable)
    for atom, variables in zip(atoms, atom_vars):
        root = uf.find(_family_token(variables[0]))
        members[root][1].append(atom)

    groups = []
    for root in sorted(members, key=lambda r: min(v.key for v in members[r][0])):
        variables, group_atoms = members[root]
        groups.append(VariableGroup(variables, group_atoms))
    return groups


def groups_for_condition(condition, extra_variables=()):
    """Partition a conjunction's atoms; DNF falls back to a single group.

    For :class:`~repro.symbolic.conditions.Disjunction` conditions the
    factorisation P[C] = Π P[K] no longer holds across disjuncts, so all
    variables are kept in one joint group (sound, just less efficient).
    """
    from repro.symbolic.conditions import Conjunction, Disjunction

    if isinstance(condition, Conjunction):
        return partition_atoms(condition.atoms, extra_variables)
    if isinstance(condition, Disjunction):
        variables = {v.key: v for v in condition.variables()}
        for variable in extra_variables:
            variables.setdefault(variable.key, variable)
        pseudo_atoms = []
        for disjunct in condition.disjuncts:
            pseudo_atoms.extend(disjunct.atoms)
        if not variables:
            return []
        return [VariableGroup(variables.values(), tuple(pseudo_atoms))]
    # FALSE has no variables.
    return []
