"""Condition consistency checking — Algorithm 3.2.

The checker serves two masters:

1. *Clean-up*: decidably inconsistent rows may be removed from c-tables
   (Section III-C), keeping intermediate results small.
2. *Bounds discovery*: the per-variable bounds map produced by the
   tightening loop feeds the inverse-CDF sampler — sampling inside
   ``[CDF(a), CDF(b)]`` guarantees every draw lands in ``[a, b]``
   (Section IV-A(b)).

Verdicts are *strong* or *weak*, mirroring the paper's bold/italic
annotations:

* ``INCONSISTENT`` + strong — a sound proof of unsatisfiability (discrete
  contradiction or an empty tightened interval).
* ``INCONSISTENT`` + weak — measure-zero (a continuous equality), which the
  probability machinery treats as zero without claiming logical
  unsatisfiability (Section III-C rule 3).
* ``CONSISTENT`` + strong — every atom was a single-variable linear
  constraint, for which interval reasoning is complete.  (The paper marks
  its no-equation-skipped branch strong; for multi-variable atoms interval
  convergence alone cannot prove satisfiability — consider
  ``X > Y ∧ Y > X`` — so we only claim strength where it actually holds.
  See DESIGN.md "Deviations".)
* ``CONSISTENT`` + weak — nothing disproved satisfiability; Monte Carlo
  enforces the rest, exactly as the paper prescribes.
"""

import math

from repro.constraints.independence import groups_for_condition
from repro.symbolic.conditions import Conjunction, Disjunction
from repro.symbolic.expression import Constant, VarTerm, is_numeric
from repro.util.intervals import Interval

CONSISTENT = "consistent"
INCONSISTENT = "inconsistent"

#: Iteration cap for the tightening fixpoint loop; convergence is normally
#: immediate for acyclic constraint graphs, and slow progress past this cap
#: cannot change the verdict's soundness (we only ever *shrink* intervals).
_MAX_TIGHTEN_ROUNDS = 50


class ConsistencyResult:
    """Outcome of a consistency check."""

    __slots__ = ("verdict", "strong", "bounds", "zero_probability", "skipped_atoms")

    def __init__(self, verdict, strong, bounds, zero_probability=False, skipped_atoms=0):
        self.verdict = verdict
        self.strong = strong
        self.bounds = bounds
        self.zero_probability = zero_probability
        self.skipped_atoms = skipped_atoms

    @property
    def is_inconsistent(self):
        return self.verdict == INCONSISTENT

    @property
    def is_consistent(self):
        return self.verdict == CONSISTENT

    def bound_for(self, variable_key):
        """Tightened interval for a variable (full interval by default)."""
        return self.bounds.get(variable_key, Interval())

    def __repr__(self):
        strength = "strong" if self.strong else "weak"
        return "<%s (%s), %d bounded vars>" % (
            self.verdict,
            strength,
            sum(1 for b in self.bounds.values() if not b.is_full),
        )


def _inconsistent(strong, zero_probability=False):
    return ConsistencyResult(
        INCONSISTENT, strong, {}, zero_probability=zero_probability
    )


def _split_equality_on_discrete(atom):
    """Recognise ``X = c`` / ``c = X`` over a discrete variable.

    Returns ``(variable, constant)`` or None.
    """
    if atom.op != "=":
        return None
    lhs, rhs = atom.lhs, atom.rhs
    if isinstance(lhs, Constant):
        lhs, rhs = rhs, lhs
    if not isinstance(lhs, VarTerm) or not isinstance(rhs, Constant):
        return None
    if not lhs.var.is_discrete:
        return None
    if not is_numeric(rhs.value):
        return None
    return (lhs.var, float(rhs.value))


def _is_continuous_equality(atom):
    """Section III-C rule 3: equality over continuous variables.

    ``Y = Y`` (identity) is excluded; everything else with at least one
    continuous variable and an ``=`` comparison has probability mass zero.
    """
    if atom.op != "=":
        return False
    if atom.lhs == atom.rhs:
        return False
    continuous = [v for v in atom.variables() if not v.is_discrete]
    return bool(continuous)


def _is_trivial_disequality(atom):
    """Rule 3's mirror: ``Y <> (·)`` over continuous variables is a.s. true."""
    if atom.op != "<>":
        return False
    if atom.lhs == atom.rhs:
        return False
    continuous = [v for v in atom.variables() if not v.is_discrete]
    return bool(continuous) and not any(v.is_discrete for v in atom.variables())


def tighten1(target_key, linear, bounds):
    """Bound ``target`` from a degree-1 atom (Algorithm 3.2's tighten1).

    ``linear`` is ``(coeffs, constant, op)`` describing
    ``Σ aᵢ·Xᵢ + c  op  0``.  The returned interval contains every value of
    the target for which *some* choice of the other variables within their
    current bounds satisfies the atom — i.e. tightening never removes a
    satisfiable point (soundness).  Strict comparisons are relaxed to
    closed ones, which is measure-preserving for continuous variables.
    """
    coeffs, constant, op = linear
    a = coeffs[target_key]
    rest = Interval.point(constant)
    for var_key, coeff in coeffs.items():
        if var_key == target_key:
            continue
        rest = rest + bounds.get(var_key, Interval()).scale(coeff)
    if rest.is_empty:
        return Interval.empty()
    # a * x + rest  op  0, for some rest in [rest.lo, rest.hi]
    if op in (">", ">="):
        # feasible iff a*x >= -rest.hi
        if a > 0:
            return Interval.at_least(_div(-rest.hi, a))
        return Interval.at_most(_div(-rest.hi, a))
    if op in ("<", "<="):
        # feasible iff a*x <= -rest.lo
        if a > 0:
            return Interval.at_most(_div(-rest.lo, a))
        return Interval.at_least(_div(-rest.lo, a))
    if op == "=":
        # x = -rest / a for some rest
        solution = (-rest).scale(1.0 / a)
        return solution
    # "<>" prunes a measure-zero set; no interval tightening possible.
    return Interval()


def _div(value, divisor):
    if math.isinf(value):
        return value if divisor > 0 else -value
    return value / divisor


def _tighten_group(atoms, variable_keys):
    """Fixpoint bounds tightening over one independent group.

    Returns ``(bounds, empty_found, weakenings)`` where ``weakenings``
    counts atoms that could not be handled *exactly*: skipped equations
    (Alg 3.2 line 11) plus polynomial hulls, whose satisfying set may be
    non-convex and therefore over-approximated.  Any weakening demotes a
    Consistent verdict to weak.
    """
    bounds = {key: Interval() for key in variable_keys}
    prepared = []
    weakenings = 0
    for atom in atoms:
        linear_form = atom.linear_form()
        degree = atom.degree()
        if linear_form is None or degree is None or degree > 1 or not linear_form[0]:
            # Degree > 1: try the polynomial tightener (the paper's
            # tightenN) for single-variable atoms before giving up.
            from repro.constraints.polynomials import tighten_polynomial

            atom_vars = atom.variables()
            handled = False
            if len(atom_vars) == 1:
                target_key = next(iter(atom_vars)).key
                hull = tighten_polynomial(atom, target_key)
                if hull is not None:
                    current = bounds.get(target_key, Interval())
                    bounds[target_key] = current.intersect(hull)
                    if bounds[target_key].is_empty:
                        return bounds, True, weakenings
                    handled = True
            # Whether hulled or skipped, the atom was not captured exactly.
            weakenings += 1
            if handled:
                continue
            continue
        coeffs, constant = linear_form
        prepared.append((coeffs, constant, atom.op))

    for _round in range(_MAX_TIGHTEN_ROUNDS):
        changed = False
        for coeffs, constant, op in prepared:
            unbounded = [k for k in coeffs if bounds.get(k, Interval()).is_full]
            if len(unbounded) > 1:
                # "if at most 1 variable in E is unbounded" — else wait for
                # other atoms to bound them first.
                continue
            for target_key in coeffs:
                tightened = tighten1(target_key, (coeffs, constant, op), bounds)
                current = bounds.get(target_key, Interval())
                new = current.intersect(tightened)
                if new != current:
                    bounds[target_key] = new
                    changed = True
                if new.is_empty:
                    return bounds, True, weakenings
        if not changed:
            break
    return bounds, False, weakenings


def check_consistency(condition):
    """Algorithm 3.2 over a condition.

    Conjunctions get the full treatment.  DNF disjunctions are consistent
    iff some disjunct is; the returned bounds are the hull across live
    disjuncts (sound for sampling restriction).
    """
    if condition.is_false:
        return _inconsistent(strong=True)
    if isinstance(condition, Disjunction):
        live = []
        for disjunct in condition.disjuncts:
            result = check_consistency(disjunct)
            if not result.is_inconsistent or result.zero_probability:
                live.append(result)
        if not live:
            return _inconsistent(strong=True)
        merged = {}
        for result in live:
            for key, interval in result.bounds.items():
                merged[key] = merged.get(key, Interval.empty()).hull(interval)
        all_zero = all(r.zero_probability for r in live)
        if all_zero:
            return _inconsistent(strong=False, zero_probability=True)
        return ConsistencyResult(CONSISTENT, False, merged)

    assert isinstance(condition, Conjunction)
    if condition.is_true:
        return ConsistencyResult(CONSISTENT, True, {})

    # Rule 1/2: deterministic atoms are already decided at construction
    # time; discrete equality contradictions checked here.
    fixed = {}
    for atom in condition.atoms:
        pinned = _split_equality_on_discrete(atom)
        if pinned is None:
            continue
        variable, value = pinned
        previous = fixed.get(variable.key)
        if previous is not None and previous != value:
            return _inconsistent(strong=True)
        fixed[variable.key] = value
    # X = c clashing with X <> c (rule 4: cheap extra detection).
    for atom in condition.atoms:
        if atom.op != "<>":
            continue
        lhs, rhs = atom.lhs, atom.rhs
        if isinstance(lhs, Constant):
            lhs, rhs = rhs, lhs
        if (
            isinstance(lhs, VarTerm)
            and isinstance(rhs, Constant)
            and is_numeric(rhs.value)
            and lhs.var.key in fixed
            and fixed[lhs.var.key] == float(rhs.value)
        ):
            return _inconsistent(strong=True)

    # Rule 3: continuous equalities are measure-zero.
    zero_probability = any(_is_continuous_equality(a) for a in condition.atoms)

    # Bounds tightening per independent group (Alg 3.2 line 4).
    considered = [
        a
        for a in condition.atoms
        if not _is_trivial_disequality(a)
    ]
    groups = groups_for_condition(Conjunction(considered))
    bounds = {}
    total_skipped = 0
    multivar_atom_seen = False
    for group in groups:
        group_bounds, empty, skipped = _tighten_group(
            group.atoms, group.variable_keys
        )
        total_skipped += skipped
        if empty:
            return _inconsistent(strong=True)
        for atom in group.atoms:
            if len(atom.variables()) > 1:
                multivar_atom_seen = True
        bounds.update(group_bounds)

    # Pin discrete equalities into the bounds map too (they are exact).
    for key, value in fixed.items():
        bounds[key] = bounds.get(key, Interval()).intersect(Interval.point(value))
        if bounds[key].is_empty:
            return _inconsistent(strong=True)

    # Rule 4 extension: intersect with distribution supports.  A bound
    # entirely outside a variable's support is a sound proof of
    # unsatisfiability (no possible world assigns such a value).
    by_key = {v.key: v for v in condition.variables()}
    for key, interval in list(bounds.items()):
        variable = by_key.get(key)
        if variable is None:
            continue
        marginal = variable.marginal()
        if marginal is None:
            continue
        dist, params = marginal
        narrowed = interval.intersect(dist.support(params))
        bounds[key] = narrowed
        if narrowed.is_empty:
            return _inconsistent(strong=True)

    if zero_probability:
        return ConsistencyResult(
            INCONSISTENT, False, bounds, zero_probability=True
        )
    strong = total_skipped == 0 and not multivar_atom_seen
    return ConsistencyResult(CONSISTENT, strong, bounds)


def prune_inconsistent_rows(table):
    """Remove rows whose condition is *provably* inconsistent.

    Measure-zero rows are kept: they are logically present in some worlds
    even though their probability mass is zero, and the paper only treats
    them "as" inconsistent for probability purposes.
    """
    kept = []
    for row in table.rows:
        result = check_consistency(row.condition)
        if result.is_inconsistent and result.strong:
            continue
        kept.append(row)
    return table.with_rows(kept)
