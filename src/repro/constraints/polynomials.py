"""Polynomial bounds tightening — the paper's ``tightenN``.

Algorithm 3.2 presents only ``tighten1`` "due to space constraints, but
all polynomial equations may be handled using a similar, albeit more
complex enumeration of coefficients."  This module supplies that handling
for atoms that are polynomial in a *single* variable with constant
coefficients:

1. extract the coefficient vector of ``lhs - rhs`` in the target variable,
2. find the real roots (numpy's companion-matrix solver),
3. determine the sign of the polynomial on each root-delimited segment,
4. return the hull of the satisfying segments (an interval that contains
   every solution — sound for bounds maps, which only ever need an
   over-approximation).

An *empty* satisfying set (e.g. ``x² + 1 < 0``) is an exact proof of
unsatisfiability, which the consistency checker reports as strong
INCONSISTENT.
"""

import math

import numpy as np

from repro.symbolic.expression import (
    BinOp,
    ColumnTerm,
    Constant,
    FuncTerm,
    UnaryOp,
    VarTerm,
    is_numeric,
)
from repro.util.intervals import Interval

#: Degrees beyond this are refused (root-finding conditioning degrades and
#: such atoms are vanishingly rare in practice).
MAX_DEGREE = 8


def poly_coefficients(expr, target_key):
    """Coefficients ``[c0, c1, …]`` of ``expr`` as a polynomial in the
    target variable, or ``None`` when the expression is not a polynomial
    in that single variable with constant coefficients.
    """
    coeffs = _poly(expr, target_key)
    if coeffs is None:
        return None
    while len(coeffs) > 1 and coeffs[-1] == 0.0:
        coeffs.pop()
    if len(coeffs) - 1 > MAX_DEGREE:
        return None
    return coeffs


def _poly(expr, target_key):
    if isinstance(expr, Constant):
        if not is_numeric(expr.value):
            return None
        return [float(expr.value)]
    if isinstance(expr, VarTerm):
        if expr.var.key == target_key:
            return [0.0, 1.0]
        return None  # another variable: coefficients not constant
    if isinstance(expr, ColumnTerm):
        return None
    if isinstance(expr, UnaryOp):
        inner = _poly(expr.operand, target_key)
        if inner is None:
            return None
        return [-c for c in inner]
    if isinstance(expr, FuncTerm):
        if expr.is_constant:
            value = expr.evaluate({})
            return [float(value)] if is_numeric(value) else None
        return None
    if isinstance(expr, BinOp):
        left = _poly(expr.left, target_key)
        right = _poly(expr.right, target_key)
        if expr.op in ("+", "-"):
            if left is None or right is None:
                return None
            size = max(len(left), len(right))
            left = left + [0.0] * (size - len(left))
            right = right + [0.0] * (size - len(right))
            sign = 1.0 if expr.op == "+" else -1.0
            return [a + sign * b for a, b in zip(left, right)]
        if expr.op == "*":
            if left is None or right is None:
                return None
            if (len(left) - 1) + (len(right) - 1) > MAX_DEGREE:
                return None
            out = [0.0] * (len(left) + len(right) - 1)
            for i, a in enumerate(left):
                if a == 0.0:
                    continue
                for j, b in enumerate(right):
                    out[i + j] += a * b
            return out
        if expr.op == "/":
            if left is None or right is None or len(right) != 1:
                return None
            divisor = right[0]
            if divisor == 0.0:
                return None
            return [c / divisor for c in left]
        if expr.op == "^":
            if left is None or right is None or len(right) != 1:
                return None
            exponent = right[0]
            if exponent < 0 or exponent != int(exponent):
                return None
            exponent = int(exponent)
            if (len(left) - 1) * exponent > MAX_DEGREE:
                return None
            out = [1.0]
            for _ in range(exponent):
                new = [0.0] * (len(out) + len(left) - 1)
                for i, a in enumerate(out):
                    for j, b in enumerate(left):
                        new[i + j] += a * b
                out = new
            return out
    return None


def _evaluate(coeffs, x):
    total = 0.0
    for coefficient in reversed(coeffs):
        total = total * x + coefficient
    return total


def solve_polynomial_segments(coeffs, op):
    """Root-delimited segments of ``{x : p(x) op 0}``.

    Returns a list of closed :class:`Interval` segments (empty list =
    unsatisfiable over the reals); a single segment means the solution set
    is exactly that interval (up to measure zero for strict comparisons).
    ``<>`` returns the full interval (no restriction).
    """
    if op == "<>":
        return [Interval()]
    degree = len(coeffs) - 1
    if degree == 0:
        constant = coeffs[0]
        satisfied = {
            "=": constant == 0.0,
            "<": constant < 0.0,
            "<=": constant <= 0.0,
            ">": constant > 0.0,
            ">=": constant >= 0.0,
        }[op]
        return [Interval()] if satisfied else []

    roots = np.roots(list(reversed(coeffs)))
    real_roots = sorted(
        _polish_root(coeffs, float(root.real))
        for root in roots
        if abs(root.imag) < 1e-9 * max(1.0, abs(root.real))
    )

    if op == "=":
        return [Interval.point(root) for root in real_roots]

    want_positive = op in (">", ">=")

    # Evaluate the sign on every root-delimited segment.
    points = [-math.inf] + real_roots + [math.inf]
    segments = []
    for i in range(len(points) - 1):
        lo, hi = points[i], points[i + 1]
        probe = _segment_probe(lo, hi)
        value = _evaluate(coeffs, probe)
        if (value > 0) == want_positive and value != 0.0:
            segments.append(Interval(lo, hi))
    if not segments and op in ("<=", ">="):
        # Only the roots themselves satisfy (e.g. x^2 <= 0).
        segments = [Interval.point(root) for root in real_roots]
    # Merge touching segments (shared root endpoint).
    merged = []
    for segment in segments:
        if merged and merged[-1].hi == segment.lo:
            merged[-1] = Interval(merged[-1].lo, segment.hi)
        else:
            merged.append(segment)
    return merged


def solve_polynomial_inequality(coeffs, op):
    """Hull of ``{x : p(x) op 0}`` for constant-coefficient ``p``.

    Returns an :class:`Interval`; ``Interval.empty()`` proves the atom
    unsatisfiable over the reals.  Strict/non-strict comparisons coincide
    up to measure zero (hulls are closed).  ``<>`` never restricts.
    """
    segments = solve_polynomial_segments(coeffs, op)
    hull = Interval.empty()
    for segment in segments:
        hull = hull.hull(segment)
    return hull


def _polish_root(coeffs, root):
    """A couple of Newton steps to clean companion-matrix noise.

    Leaves multiple roots (derivative ~ 0) untouched.
    """
    derivative = [i * c for i, c in enumerate(coeffs)][1:]
    for _ in range(3):
        value = _evaluate(coeffs, root)
        slope = _evaluate(derivative, root)
        if abs(slope) < 1e-12:
            break
        step = value / slope
        if not math.isfinite(step):
            break
        root -= step
    # Snap to an exact integer when within solver noise of one.
    nearest = round(root)
    if abs(root - nearest) < 1e-9 and _evaluate(coeffs, float(nearest)) == 0.0:
        return float(nearest)
    return root


def _segment_probe(lo, hi):
    if math.isinf(lo) and math.isinf(hi):
        return 0.0
    if math.isinf(lo):
        return hi - max(1.0, abs(hi))
    if math.isinf(hi):
        return lo + max(1.0, abs(lo))
    return 0.5 * (lo + hi)


def tighten_polynomial(atom, target_key):
    """tightenN: interval containing all satisfying values of ``target``.

    Returns ``None`` when the atom is not a constant-coefficient
    polynomial in exactly the target variable.
    """
    variables = atom.variables()
    if len(variables) != 1 or next(iter(variables)).key != target_key:
        return None
    normal = atom.normalized()
    if normal is None:
        return None
    diff, op = normal
    coeffs = poly_coefficients(diff, target_key)
    if coeffs is None or len(coeffs) - 1 <= 1:
        return None  # tighten1 already covers degree <= 1
    return solve_polynomial_inequality(coeffs, op)
