"""Constraint analysis: consistency (Algorithm 3.2) and independence."""

from repro.constraints.consistency import (
    ConsistencyResult,
    CONSISTENT,
    INCONSISTENT,
    check_consistency,
    prune_inconsistent_rows,
    tighten1,
)
from repro.constraints.independence import (
    VariableGroup,
    partition_atoms,
    groups_for_condition,
)

__all__ = [
    "ConsistencyResult",
    "CONSISTENT",
    "INCONSISTENT",
    "check_consistency",
    "prune_inconsistent_rows",
    "tighten1",
    "VariableGroup",
    "partition_atoms",
    "groups_for_condition",
]
