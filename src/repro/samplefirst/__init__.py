"""Sample-First: the MCDB-style baseline engine (Section VI)."""

from repro.samplefirst.bundles import (
    BundleValue,
    evaluate_expression,
    evaluate_condition,
)
from repro.samplefirst.table import SFTable, SFRow
from repro.samplefirst.engine import (
    SampleFirstDatabase,
    sf_select,
    sf_select_fn,
    sf_project,
    sf_product,
    sf_join,
    sf_equijoin,
    sf_union,
    sf_prefix,
    sf_partition,
)
from repro.samplefirst.aggregates import (
    SFAggregateResult,
    sf_expected_sum,
    sf_expected_count,
    sf_expected_avg,
    sf_expected_max,
    sf_expected_min,
    sf_expected_stddev,
    sf_row_expectation,
    sf_confidence,
    sf_grouped_aggregate,
)

__all__ = [
    "BundleValue",
    "evaluate_expression",
    "evaluate_condition",
    "SFTable",
    "SFRow",
    "SampleFirstDatabase",
    "sf_select",
    "sf_select_fn",
    "sf_project",
    "sf_product",
    "sf_join",
    "sf_equijoin",
    "sf_union",
    "sf_prefix",
    "sf_partition",
    "SFAggregateResult",
    "sf_expected_sum",
    "sf_expected_count",
    "sf_expected_avg",
    "sf_expected_max",
    "sf_expected_min",
    "sf_expected_stddev",
    "sf_row_expectation",
    "sf_confidence",
    "sf_grouped_aggregate",
]
