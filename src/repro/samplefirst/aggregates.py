"""Sample-First aggregates: per-world reduction, across-world averaging.

The estimate behind every aggregate is "evaluate the deterministic
aggregate independently in each sampled world, then average".  The
per-world vector is also exposed because the benchmark harness studies its
dispersion (that is exactly the RMS error Figures 7/8 plot).
"""

import math

import numpy as np

from repro.samplefirst.bundles import BundleValue, evaluate_expression
from repro.symbolic.expression import as_expression, col
from repro.util.errors import PIPError


class SFAggregateResult:
    """Across-world estimate plus the raw per-world aggregate vector."""

    __slots__ = ("value", "per_world", "n_worlds", "worlds_used")

    def __init__(self, value, per_world, worlds_used):
        self.value = value
        self.per_world = per_world
        self.n_worlds = per_world.shape[0]
        self.worlds_used = worlds_used

    def __float__(self):
        return float(self.value)

    def __repr__(self):
        return "SFAggregateResult(%.6g over %d worlds, %d informative)" % (
            self.value,
            self.n_worlds,
            self.worlds_used,
        )


def _resolve(table, target):
    if isinstance(target, str):
        return col(target)
    return as_expression(target)


def _row_values(table, row, expr):
    mapping = table.row_mapping(row)
    result = evaluate_expression(expr, mapping, table.n_worlds)
    if isinstance(result, BundleValue):
        result = result.values
    if isinstance(result, np.ndarray):
        return result
    return np.full(table.n_worlds, float(result))


def sf_expected_sum(table, target):
    """Per-world Σ over present rows, averaged across worlds."""
    expr = _resolve(table, target)
    totals = np.zeros(table.n_worlds)
    for row in table.rows:
        values = _row_values(table, row, expr)
        totals += np.where(row.presence, values, 0.0)
    return SFAggregateResult(float(totals.mean()), totals, table.n_worlds)


def sf_expected_count(table):
    totals = np.zeros(table.n_worlds)
    for row in table.rows:
        totals += row.presence
    return SFAggregateResult(float(totals.mean()), totals, table.n_worlds)


def sf_expected_avg(table, target):
    """Across-world mean of per-world averages (NaN-world skipping)."""
    expr = _resolve(table, target)
    totals = np.zeros(table.n_worlds)
    counts = np.zeros(table.n_worlds)
    for row in table.rows:
        values = _row_values(table, row, expr)
        totals += np.where(row.presence, values, 0.0)
        counts += row.presence
    informative = counts > 0
    if not informative.any():
        return SFAggregateResult(math.nan, np.full(table.n_worlds, math.nan), 0)
    per_world = np.where(informative, totals / np.maximum(counts, 1), math.nan)
    value = float(per_world[informative].mean())
    return SFAggregateResult(value, per_world, int(informative.sum()))


def sf_expected_max(table, target, empty_value=0.0):
    """Per-world max over present rows (``empty_value`` where none)."""
    expr = _resolve(table, target)
    best = np.full(table.n_worlds, -math.inf)
    any_present = np.zeros(table.n_worlds, dtype=bool)
    for row in table.rows:
        values = _row_values(table, row, expr)
        best = np.where(row.presence, np.fmax(best, values), best)
        any_present |= row.presence
    per_world = np.where(any_present, best, empty_value)
    return SFAggregateResult(float(per_world.mean()), per_world, int(any_present.sum()))


def sf_expected_min(table, target, empty_value=0.0):
    expr = _resolve(table, target)
    worst = np.full(table.n_worlds, math.inf)
    any_present = np.zeros(table.n_worlds, dtype=bool)
    for row in table.rows:
        values = _row_values(table, row, expr)
        worst = np.where(row.presence, np.fmin(worst, values), worst)
        any_present |= row.presence
    per_world = np.where(any_present, worst, empty_value)
    return SFAggregateResult(float(per_world.mean()), per_world, int(any_present.sum()))


def sf_expected_stddev(table, target):
    """Across-world standard deviation of the per-world sum."""
    expr = _resolve(table, target)
    totals = np.zeros(table.n_worlds)
    for row in table.rows:
        values = _row_values(table, row, expr)
        totals += np.where(row.presence, values, 0.0)
    return SFAggregateResult(float(totals.std()), totals, table.n_worlds)


def sf_row_expectation(table, row, target):
    """Per-row semantics: mean of the cell over the worlds where present.

    This is the Sample-First counterpart of PIP's conditional per-row
    expectation — and the place where selectivity hurts: only
    ``presence.sum()`` of the ``n_worlds`` committed samples contribute.
    """
    expr = _resolve(table, target)
    values = _row_values(table, row, expr)
    used = int(row.presence.sum())
    if used == 0:
        return math.nan, 0
    return float(values[row.presence].mean()), used


def sf_confidence(table, row):
    """Presence frequency — the Sample-First estimate of row confidence."""
    return float(row.presence.mean())


def sf_grouped_aggregate(table, group_columns, aggregate, target=None, **kwargs):
    """GROUP BY + aggregate, mirroring the PIP grouped operator's shape.

    Returns a list of ``(key_tuple, SFAggregateResult)``.
    """
    from repro.samplefirst.engine import sf_partition

    fns = {
        "expected_sum": lambda t: sf_expected_sum(t, target),
        "expected_count": sf_expected_count,
        "expected_avg": lambda t: sf_expected_avg(t, target),
        "expected_max": lambda t: sf_expected_max(t, target, **kwargs),
        "expected_min": lambda t: sf_expected_min(t, target, **kwargs),
    }
    if aggregate not in fns:
        raise PIPError("unknown aggregate %r" % (aggregate,))
    fn = fns[aggregate]
    return [(key, fn(sub)) for key, sub in sf_partition(table, group_columns)]
