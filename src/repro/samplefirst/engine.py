"""The Sample-First engine (Section VI's MCDB re-implementation).

Architecture: the database commits to ``n_worlds`` full samples of every
random variable *at creation time* (the VG-function call), then evaluates
the whole query once over the arrays.  Selections AND their per-world
predicate masks into each bundle's presence bitmap; aggregates reduce over
rows per world and report the across-world average.

Consequences the benchmarks measure:

* a selective predicate leaves most worlds absent, so the effective sample
  count behind an estimate is ``n_worlds × selectivity`` — the Figure 5/7
  accuracy penalty;
* asking for more samples means *rebuilding and rerunning everything*
  (:meth:`SampleFirstDatabase.respawn`), the Figure 5 time penalty.
"""

import math

import numpy as np

from repro.ctables.schema import Schema
from repro.distributions import MultivariateDistribution, get_distribution
from repro.samplefirst.bundles import (
    BundleValue,
    evaluate_condition,
    evaluate_expression,
)
from repro.samplefirst.table import SFRow, SFTable
from repro.symbolic.expression import as_expression
from repro.util.errors import PIPError, SchemaError
from repro.util.hashing import derive_seed
from repro.distributions import rng_from_seed


class SampleFirstDatabase:
    """An MCDB-style probabilistic database over ``n_worlds`` samples."""

    def __init__(self, n_worlds=1000, seed=0):
        self.n_worlds = n_worlds
        self.seed = seed
        self.tables = {}
        self._next_vid = 1

    # -- DDL / DML ----------------------------------------------------------

    def create_table(self, name, columns):
        if name in self.tables:
            raise SchemaError("table %r already exists" % (name,))
        table = SFTable(Schema(columns), self.n_worlds, name=name)
        self.tables[name] = table
        return table

    def register(self, name, table):
        table.name = name
        self.tables[name] = table
        return table

    def table(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError("no table %r" % (name,)) from None

    def insert(self, name, values, presence=None):
        self.table(name).add_row(values, presence)

    # -- VG functions ---------------------------------------------------------

    def create_variable(self, distribution, params):
        """The sample-first commitment: draw all worlds now.

        Mirrors MCDB's VG functions — returns a :class:`BundleValue` (or a
        list of them for multivariate classes) holding one draw per world.
        """
        dist = get_distribution(distribution)
        canonical = dist.validate_params(tuple(params))
        vid = self._next_vid
        self._next_vid += 1
        rng = rng_from_seed(derive_seed(self.seed, "sf", vid))
        if isinstance(dist, MultivariateDistribution):
            joint = dist.generate_joint_batch(canonical, rng, self.n_worlds)
            return [BundleValue(joint[:, i]) for i in range(joint.shape[1])]
        return BundleValue(dist.generate_batch(canonical, rng, self.n_worlds))

    def respawn(self, n_worlds=None, seed_shift=1):
        """A fresh empty database with new worlds.

        The sample-first architecture cannot extend an existing sample set
        without bias; needing more samples means repeating the whole
        pipeline — this is the cost Figure 5 charges to Sample-First.
        """
        return SampleFirstDatabase(
            n_worlds=n_worlds or self.n_worlds, seed=self.seed + seed_shift
        )

    def __repr__(self):
        return "<SampleFirstDatabase: %d tables, %d worlds>" % (
            len(self.tables),
            self.n_worlds,
        )


# ---------------------------------------------------------------------------
# Relational operators over tuple bundles
# ---------------------------------------------------------------------------


def sf_select(table, predicate):
    """Selection: AND the per-world predicate mask into each presence map.

    Rows absent from every world are dropped entirely (the bundle dies).
    """
    out_rows = []
    for row in table.rows:
        mapping = table.row_mapping(row)
        mask = np.asarray(evaluate_condition(predicate, mapping, table.n_worlds))
        if mask.shape == ():
            mask = np.full(table.n_worlds, bool(mask))
        presence = row.presence & mask
        if presence.any():
            out_rows.append(SFRow(row.values, presence))
    return table.with_rows(out_rows)


def sf_select_fn(table, fn):
    """Deterministic selection via a Python callable on the row mapping."""
    return table.with_rows([r for r in table.rows if fn(table.row_mapping(r))])


def sf_project(table, items):
    """Projection/computation; expressions may mix scalars and bundles."""
    out_columns = []
    builders = []
    for item in items:
        if isinstance(item, str):
            idx = table.schema.index_of(item)
            out_columns.append(table.schema.columns[idx])
            builders.append(("col", idx))
        else:
            name, expr = item
            out_columns.append((name, "any"))
            builders.append(("expr", as_expression(expr)))
    out = SFTable(Schema(out_columns), table.n_worlds, name=table.name)
    for row in table.rows:
        mapping = table.row_mapping(row)
        values = []
        for kind, payload in builders:
            if kind == "col":
                values.append(row.values[payload])
            else:
                result = evaluate_expression(payload, mapping, table.n_worlds)
                if isinstance(result, np.ndarray):
                    values.append(BundleValue(result))
                else:
                    values.append(result)
        out.rows.append(SFRow(tuple(values), row.presence))
    return out


def sf_product(left, right):
    """Cross product; presence maps intersect."""
    schema = left.schema.concat(right.schema)
    out = SFTable(schema, left.n_worlds)
    for lrow in left.rows:
        for rrow in right.rows:
            presence = lrow.presence & rrow.presence
            if presence.any():
                out.rows.append(SFRow(lrow.values + rrow.values, presence))
    return out


def sf_join(left, right, predicate):
    return sf_select(sf_product(left, right), predicate)


def sf_equijoin(left, right, left_key, right_key):
    """Hash equijoin on deterministic key columns (the common fast path)."""
    li = left.schema.index_of(left_key)
    ri = right.schema.index_of(right_key)
    index = {}
    for rrow in right.rows:
        key = rrow.values[ri]
        if isinstance(key, BundleValue):
            raise PIPError("equijoin key %r is uncertain" % (right_key,))
        index.setdefault(key, []).append(rrow)
    schema = left.schema.concat(right.schema)
    out = SFTable(schema, left.n_worlds)
    for lrow in left.rows:
        key = lrow.values[li]
        if isinstance(key, BundleValue):
            raise PIPError("equijoin key %r is uncertain" % (left_key,))
        for rrow in index.get(key, ()):
            presence = lrow.presence & rrow.presence
            if presence.any():
                out.rows.append(SFRow(lrow.values + rrow.values, presence))
    return out


def sf_union(left, right):
    if len(left.schema) != len(right.schema):
        raise SchemaError("union arity mismatch")
    return left.with_rows(list(left.rows) + list(right.rows))


def sf_prefix(table, alias):
    return SFTable(
        table.schema.prefixed(alias), table.n_worlds, list(table.rows), name=alias
    )


def sf_partition(table, group_columns):
    """GROUP BY deterministic columns."""
    indices = [table.schema.index_of(c) for c in group_columns]
    order = []
    groups = {}
    for row in table.rows:
        key = []
        for idx in indices:
            value = row.values[idx]
            if isinstance(value, BundleValue):
                raise PIPError("GROUP BY on uncertain column is not supported")
            key.append(value)
        key = tuple(key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    return [(key, table.with_rows(groups[key])) for key in order]
