"""Tuple-bundle values (the MCDB emulation of Section VI).

The paper's Sample-First baseline represents "a sampled variable … using
an array of floats, while the tuple bundle's presence in each sampled
world is represented using a densely packed array of booleans".

:class:`BundleValue` is that array of floats: one value per sampled world,
committed at variable-creation time (the defining property of the
sample-first architecture).  Arithmetic is vectorised; comparisons yield
per-world boolean masks that selections AND into the bundle's presence.

Expressions written for the PIP engine (``ColumnTerm``/``Constant``
trees) are reused verbatim by :func:`evaluate_expression` /
:func:`evaluate_condition`, so workloads can define a query once and run
it on both engines — the paper's "common codebase" fairness argument.
"""

import numpy as np

from repro.symbolic.atoms import Atom, _OPS
from repro.symbolic.conditions import Conjunction, Disjunction
from repro.symbolic.expression import (
    BinOp,
    ColumnTerm,
    Constant,
    FuncTerm,
    UnaryOp,
    _ARITH,
    _FUNCS,
)
from repro.util.errors import PIPError


class BundleValue:
    """One uncertain cell: a value per sampled world."""

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = np.asarray(values, dtype=float)

    @property
    def n_worlds(self):
        return self.values.shape[0]

    # -- arithmetic -----------------------------------------------------------

    def _coerce(self, other):
        if isinstance(other, BundleValue):
            return other.values
        return other

    def __add__(self, other):
        return BundleValue(self.values + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        return BundleValue(self.values - self._coerce(other))

    def __rsub__(self, other):
        return BundleValue(self._coerce(other) - self.values)

    def __mul__(self, other):
        return BundleValue(self.values * self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return BundleValue(self.values / self._coerce(other))

    def __rtruediv__(self, other):
        return BundleValue(self._coerce(other) / self.values)

    def __neg__(self):
        return BundleValue(-self.values)

    # -- comparisons (per-world masks) -------------------------------------------

    def __lt__(self, other):
        return self.values < self._coerce(other)

    def __le__(self, other):
        return self.values <= self._coerce(other)

    def __gt__(self, other):
        return self.values > self._coerce(other)

    def __ge__(self, other):
        return self.values >= self._coerce(other)

    def mean(self):
        return float(self.values.mean())

    def __repr__(self):
        return "BundleValue(n=%d, mean=%.4g)" % (self.values.size, self.values.mean())


def evaluate_expression(expr, row_mapping, n_worlds):
    """Evaluate a symbolic expression against a Sample-First row.

    Returns a scalar (deterministic) or an ndarray of per-world values.
    ``row_mapping`` maps column names to cell values (scalars or
    :class:`BundleValue`).  Random-variable leaves are illegal here: in a
    sample-first engine variables were replaced by arrays at creation.
    """
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, ColumnTerm):
        name = expr.name
        if name not in row_mapping and "." in name:
            name = name.split(".")[-1]
        if name not in row_mapping:
            matches = [k for k in row_mapping if k.split(".")[-1] == expr.name]
            if len(matches) == 1:
                name = matches[0]
            else:
                raise PIPError("column %r not found in sample-first row" % (expr.name,))
        value = row_mapping[name]
        if isinstance(value, BundleValue):
            return value.values
        return value
    if isinstance(expr, BinOp):
        left = evaluate_expression(expr.left, row_mapping, n_worlds)
        right = evaluate_expression(expr.right, row_mapping, n_worlds)
        return _ARITH[expr.op](left, right)
    if isinstance(expr, UnaryOp):
        return -evaluate_expression(expr.operand, row_mapping, n_worlds)
    if isinstance(expr, FuncTerm):
        args = [evaluate_expression(a, row_mapping, n_worlds) for a in expr.args]
        return _FUNCS[expr.func](*args)
    raise PIPError(
        "expression leaf %r is not valid in the sample-first engine" % (expr,)
    )


def evaluate_atom(atom, row_mapping, n_worlds):
    """Per-world truth mask (or scalar bool) of one comparison."""
    left = evaluate_expression(atom.lhs, row_mapping, n_worlds)
    right = evaluate_expression(atom.rhs, row_mapping, n_worlds)
    return _OPS[atom.op](left, right)


def evaluate_condition(condition, row_mapping, n_worlds):
    """Per-world truth mask of a Conjunction/Disjunction predicate."""
    if isinstance(condition, Atom):
        return evaluate_atom(condition, row_mapping, n_worlds)
    if isinstance(condition, Conjunction):
        mask = np.ones(n_worlds, dtype=bool)
        for atom in condition.atoms:
            mask &= np.asarray(evaluate_atom(atom, row_mapping, n_worlds))
        return mask
    if isinstance(condition, Disjunction):
        mask = np.zeros(n_worlds, dtype=bool)
        for disjunct in condition.disjuncts:
            mask |= np.asarray(evaluate_condition(disjunct, row_mapping, n_worlds))
        return mask
    if condition.is_false:
        return np.zeros(n_worlds, dtype=bool)
    raise PIPError("cannot evaluate %r in the sample-first engine" % (condition,))
