"""Sample-First tables: rows of tuple bundles.

An :class:`SFTable` mirrors :class:`~repro.ctables.table.CTable`, but the
uncertainty is *materialised*: uncertain cells are
:class:`~repro.samplefirst.bundles.BundleValue` arrays and each row carries
a per-world presence bitmap instead of a symbolic condition.
"""

import numpy as np

from repro.ctables.schema import Schema
from repro.samplefirst.bundles import BundleValue
from repro.util.errors import SchemaError
from repro.util.text import render_table


class SFRow:
    """One tuple bundle: values plus a presence mask over worlds."""

    __slots__ = ("values", "presence")

    def __init__(self, values, presence):
        self.values = tuple(values)
        self.presence = np.asarray(presence, dtype=bool)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, i):
        return self.values[i]

    def __repr__(self):
        return "SFRow(%r, present=%d/%d)" % (
            self.values,
            int(self.presence.sum()),
            self.presence.size,
        )


class SFTable:
    """A relation of tuple bundles over ``n_worlds`` sampled worlds."""

    __slots__ = ("schema", "rows", "n_worlds", "name")

    def __init__(self, schema, n_worlds, rows=(), name=None):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self.n_worlds = n_worlds
        self.name = name
        self.rows = list(rows)

    @property
    def columns(self):
        return self.schema.names

    def add_row(self, values, presence=None):
        if len(values) != len(self.schema):
            raise SchemaError(
                "row arity %d does not match schema arity %d"
                % (len(values), len(self.schema))
            )
        for value in values:
            if isinstance(value, BundleValue) and value.n_worlds != self.n_worlds:
                raise SchemaError(
                    "bundle has %d worlds, table has %d"
                    % (value.n_worlds, self.n_worlds)
                )
        if presence is None:
            presence = np.ones(self.n_worlds, dtype=bool)
        self.rows.append(SFRow(values, presence))

    def row_mapping(self, row):
        return dict(zip(self.schema.names, row.values))

    def with_rows(self, rows, name=None):
        return SFTable(self.schema, self.n_worlds, rows, name=name or self.name)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def pretty(self, max_rows=20):
        headers = list(self.schema.names) + ["presence"]
        body = []
        for row in self.rows[:max_rows]:
            cells = [
                "bundle(mean=%.4g)" % v.values.mean() if isinstance(v, BundleValue) else v
                for v in row.values
            ]
            body.append(cells + ["%d/%d" % (int(row.presence.sum()), self.n_worlds)])
        title = "%s (%d bundles, %d worlds)" % (
            self.name or "sftable",
            len(self.rows),
            self.n_worlds,
        )
        return render_table(headers, body, title=title)

    def __repr__(self):
        return "<SFTable %s: %d rows, %d worlds>" % (
            self.name or "?",
            len(self.rows),
            self.n_worlds,
        )
