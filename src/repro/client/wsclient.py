"""A blocking WebSocket client over a plain socket.

The client side of the stdlib-only wire stack: dials, performs the
RFC 6455 upgrade against ``/v1/session``, then exchanges frames using
the same codec the server uses (:mod:`repro.server.wsproto`).  Blocking
on purpose — the client mirrors the DB-API, and DB-API calls block.

A non-101 upgrade response is decoded as a JSON wire error and re-raised
as the matching :class:`~repro.util.errors.PIPError` subclass (bad token
→ :class:`AuthError`, unknown database → :class:`ProtocolError`), so
``connect()`` failures look exactly like their server-side causes.
"""

import json
import socket

from repro.server import wsproto
from repro.util.errors import ProtocolError, error_from_code


class BlockingWebSocket:
    """One upgraded WebSocket connection (client side)."""

    def __init__(self, host, port, resource, headers=(), timeout=30.0):
        self.host = host
        self.port = port
        self.resource = resource
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self._assembler = wsproto.MessageAssembler()
        self.closed = False
        try:
            self._upgrade(headers)
        except BaseException:
            self._sock.close()
            raise

    # -- handshake ----------------------------------------------------------------

    def _upgrade(self, headers):
        key = wsproto.client_key()
        lines = [
            "GET %s HTTP/1.1" % (self.resource,),
            "Host: %s:%d" % (self.host, self.port),
            "Upgrade: websocket",
            "Connection: Upgrade",
            "Sec-WebSocket-Key: %s" % (key,),
            "Sec-WebSocket-Version: 13",
        ]
        lines.extend("%s: %s" % pair for pair in headers)
        self._sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        status, response_headers, body = self._read_http_response()
        if status != 101:
            entry = {}
            try:
                entry = json.loads(body.decode("utf-8")).get("error", {})
            except (ValueError, UnicodeDecodeError):
                pass
            raise error_from_code(
                entry.get("code", "PIP-PROTOCOL"),
                entry.get("message",
                          "websocket upgrade refused with HTTP %d" % status),
            )
        expected = wsproto.accept_key(key)
        if response_headers.get("sec-websocket-accept") != expected:
            raise ProtocolError("server returned a bad Sec-WebSocket-Accept")

    def _read_http_response(self):
        head = self._read_until(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            status = int(lines[0].split(" ", 2)[1])
        except (IndexError, ValueError) as exc:
            raise ProtocolError(
                "malformed HTTP status line %r" % lines[0][:80]) from exc
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            body = self._read_exactly(int(length))
        return status, headers, body

    # -- buffered reads -----------------------------------------------------------

    def _read_until(self, marker):
        while marker not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("connection closed during HTTP read")
            self._buffer += chunk
            if len(self._buffer) > 1 << 20:
                raise ProtocolError("HTTP response head exceeds 1 MiB")
        head, self._buffer = self._buffer.split(marker, 1)
        return head + marker

    def _read_exactly(self, n):
        while len(self._buffer) < n:
            chunk = self._sock.recv(max(65536, n - len(self._buffer)))
            if not chunk:
                raise ConnectionError("connection closed mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    # -- messages -----------------------------------------------------------------

    def send_text(self, text):
        self._sock.sendall(wsproto.encode_frame(wsproto.OP_TEXT, text, mask=True))

    def recv_message(self):
        """The next text/binary message; answers pings internally and
        raises :class:`ConnectionError` on a close frame or EOF."""
        while True:
            fed = self._assembler.feed(*wsproto.read_frame_sync(self._read_exactly))
            if fed is None:
                continue
            opcode, payload = fed
            if opcode == wsproto.OP_PING:
                self._sock.sendall(
                    wsproto.encode_frame(wsproto.OP_PONG, payload, mask=True))
                continue
            if opcode == wsproto.OP_PONG:
                continue
            if opcode == wsproto.OP_CLOSE:
                self.closed = True
                raise ConnectionError("server closed the connection")
            return opcode, payload

    def close(self):
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.sendall(
                wsproto.encode_frame(
                    wsproto.OP_CLOSE, wsproto.close_payload(), mask=True))
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
