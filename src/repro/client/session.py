"""The remote session: DB-API over the wire.

:func:`repro.client.connect` returns a :class:`RemoteSession` whose
surface mirrors the in-process :class:`~repro.session.Session` —
``execute``/``executemany``, ``fetchone``/``fetchmany``/``fetchall``,
``description``/``rowcount``, ``cursor()``, ``sql()``, and explicit
transactions (``begin()``/``commit()``/``rollback()`` or
``with session.transaction():``) — so code written against a local
database runs unchanged against a server.  Errors come back as the same
exception classes (:class:`TransactionError` on a commit conflict,
:class:`SchemaError` on an unknown table, …) via their stable wire codes.

Results stream in: large ``SELECT``s arrive as chunked ``rows`` frames
that the cursor accumulates, and ``cursor.result`` is a full
:class:`~repro.engine.results.ResultSet` — rows, estimate metadata,
confidence intervals and :class:`QueryStats` bit-identical to what the
same statement returns in-process.

Reconnection: with a :class:`~repro.client.reconnect.ReconnectPolicy`
(on by default), a dropped connection is re-dialed with exponential
backoff + jitter and the failed request retried — but **only in
autocommit**: a connection lost inside an explicit transaction loses the
server-side session and its staged writes (the server rolls them back),
so the client raises :class:`TransactionError` instead of silently
starting over.
"""

from repro.client.reconnect import ReconnectPolicy
from repro.client.wsclient import BlockingWebSocket
from repro.engine.results import ResultSet
from repro.obs.trace import IdAllocator, format_traceparent
from repro.server import protocol, wsproto
from repro.util.errors import (
    ProtocolError,
    SessionError,
    TransactionError,
    WireFormatError,
)


class RemoteCursor:
    """A DB-API-shaped cursor over one remote session.

    Mirrors :class:`repro.session.session.Cursor`: fetch position is
    cursor-local, everything else lives on the session/server.
    ``chunks_received`` counts the streamed ``rows`` frames behind the
    last result — >1 means the server never sent the result whole.
    """

    arraysize = 1

    def __init__(self, session):
        self.session = session
        self._rows = []
        self._position = 0
        self._description = None
        self._rowcount = -1
        self.result = None
        self.chunks_received = 0
        self._closed = False

    def _check_open(self):
        if self._closed:
            raise SessionError("cursor is closed")
        self.session._check_open()

    def execute(self, text, params=None):
        """Run one SQL statement on the server; returns the cursor."""
        self._check_open()
        done, rows, conditions, chunks = self.session._call(
            "execute", sql=text, params=params
        )
        self._rows = []
        self._position = 0
        self._description = None
        self._rowcount = done.get("rowcount", -1)
        self.result = None
        self.chunks_received = chunks
        if done.get("kind") == "resultset":
            payload = dict(done["result"])
            payload["rows"] = rows
            if conditions:
                payload["conditions"] = conditions
            self.result = ResultSet.from_payload(payload)
            self._rows = self.result.rows()
            self._rowcount = len(self._rows)
            self._description = [
                (column.name, column.ctype, None, None, None, None, None)
                for column in self.result.schema.columns
            ]
            stats = self.result.stats
            if stats is not None:
                # Correlate the client-side result with the distributed
                # trace: the server's trace id (ours, when it adopted our
                # traceparent) and its coarse timing breakdown.
                if stats.trace_id is None:
                    stats.trace_id = done.get("trace_id")
                stats.server_timing = done.get("server_timing")
        return self

    def executemany(self, text, param_seq):
        """Run one statement once per parameter mapping (server-prepared)."""
        self._check_open()
        done, _rows, _conditions, _chunks = self.session._call(
            "executemany", sql=text, paramseq=list(param_seq)
        )
        self._rows = []
        self._position = 0
        self._description = None
        self._rowcount = done.get("rowcount", -1)
        self.result = None
        self.chunks_received = 0
        return self

    # -- fetching (identical to the local cursor) ---------------------------------

    @property
    def description(self):
        return self._description

    @property
    def rowcount(self):
        return self._rowcount

    def fetchone(self):
        self._check_open()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size=None):
        self._check_open()
        if size is None:
            size = self.arraysize
        chunk = self._rows[self._position : self._position + size]
        self._position += len(chunk)
        return chunk

    def fetchall(self):
        self._check_open()
        chunk = self._rows[self._position :]
        self._position = len(self._rows)
        return chunk

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self):
        self._closed = True
        self._rows = []
        self.result = None

    def __repr__(self):
        state = "closed" if self._closed else "%d rows" % (len(self._rows),)
        return "<RemoteCursor (%s)>" % (state,)


class RemoteTransaction:
    """Context-manager handle matching the local ``Transaction`` shape:
    commit on clean exit, roll back when the body raises."""

    def __init__(self, session):
        self.session = session

    @property
    def is_active(self):
        return self.session.in_transaction

    def commit(self):
        self.session.commit()

    def rollback(self):
        self.session.rollback()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        if not self.is_active:
            return False  # committed/rolled back explicitly inside the body
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False


class RemoteSession:
    """One client's handle on a served database — see the module doc.

    Create with :func:`repro.client.connect`; usable as a context
    manager (closing rolls back any open transaction server-side).
    """

    def __init__(self, host, port, *, token=None, db=None, timeout=30.0,
                 reconnect=True, trace_rng=None, telemetry=None):
        self.host = host
        self.port = port
        self.token = token
        self.db_name = db
        self.timeout = timeout
        if reconnect is True:
            reconnect = ReconnectPolicy()
        elif reconnect is False:
            reconnect = None
        self.reconnect_policy = reconnect
        self.reconnects = 0  # successful re-dials over this session's life
        # Distributed tracing: every request carries a W3C traceparent.
        # ``telemetry`` (a client-side Telemetry with tracing on) wraps
        # each statement in a ``client.wire`` span whose ids seed the
        # header; without it, ids are minted directly — ``trace_rng``
        # (a seeded random.Random) makes them deterministic for tests.
        self._trace_ids = IdAllocator(trace_rng)
        self.telemetry = telemetry
        self._ws = None
        self._closed = False
        self._in_transaction = False
        self._next_id = 1
        self._hello = None
        self._dial()
        self._cursor = RemoteCursor(self)

    # -- connection management ----------------------------------------------------

    def _resource(self):
        resource = "/v1/session"
        if self.db_name:
            resource += "?db=%s" % (self.db_name,)
        return resource

    def _dial(self):
        headers = []
        if self.token is not None:
            headers.append(("Authorization", "Bearer %s" % (self.token,)))
        ws = BlockingWebSocket(
            self.host, self.port, self._resource(),
            headers=headers, timeout=self.timeout,
        )
        opcode, payload = ws.recv_message()
        if opcode != wsproto.OP_TEXT:
            ws.close()
            raise ProtocolError("expected a hello frame, got opcode %d" % opcode)
        hello = protocol.loads(payload)
        if hello.get("type") != "hello":
            ws.close()
            raise ProtocolError("expected a hello frame, got %r" % (hello,))
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            ws.close()
            raise WireFormatError(
                "server speaks protocol version %r, this client speaks %d"
                % (hello.get("version"), protocol.PROTOCOL_VERSION))
        self._hello = hello
        self._ws = ws

    def _redial(self, cause):
        """Backoff-and-retry dial loop after a dropped connection."""
        policy = self.reconnect_policy
        if policy is None:
            raise cause
        last = cause
        for attempt in range(policy.max_retries):
            policy.wait(attempt)
            try:
                self._dial()
                self.reconnects += 1
                return
            except (OSError, ConnectionError) as exc:
                last = exc
        raise ConnectionError(
            "could not re-establish the connection after %d attempts"
            % (policy.max_retries,)) from last

    def _check_open(self):
        if self._closed:
            raise SessionError(
                "session is closed; open a new one with repro.client.connect()"
            )

    @property
    def closed(self):
        return self._closed

    def close(self):
        """Close the session (idempotent).  An open transaction is rolled
        back server-side, exactly like closing a local session."""
        if self._closed:
            return
        self._closed = True
        self._in_transaction = False
        ws, self._ws = self._ws, None
        if ws is None or ws.closed:
            return
        try:
            ws.send_text(protocol.dumps({"id": 0, "op": "close"}))
        except OSError:
            pass
        ws.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # -- the request/response engine ----------------------------------------------

    def _call(self, op, **fields):
        """One request → ``(done_message, rows, conditions, chunk_count)``.

        Streamed ``rows`` frames are folded into one row list (chunk-local
        condition indices re-based to global row indices).  A wire error
        re-raises as the matching :class:`PIPError` subclass.  A dropped
        connection triggers the reconnect path (autocommit only).

        Every request carries a ``traceparent`` minted client-side; one
        logical statement keeps one trace id across reconnect retries
        (the retried request is tagged ``retry``), so a distributed trace
        never splits mid-statement.
        """
        self._check_open()
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        if tracer is not None and tracer.enabled:
            # The client-side wire span is the trace root: the server's
            # ``server.request`` span becomes its child.
            with tracer.span(
                "client.wire", op=op, db=self.db_name or "-"
            ) as wire_span:
                return self._request_loop(
                    op, fields, wire_span.trace_id, wire_span.span_id, wire_span
                )
        return self._request_loop(
            op, fields, self._trace_ids.trace_id(), self._trace_ids.span_id(),
            None,
        )

    def _request_loop(self, op, fields, trace_id, span_id, wire_span):
        attempts = 0
        while True:
            request_id = self._next_id
            self._next_id += 1
            message = {
                "id": request_id,
                "op": op,
                "traceparent": format_traceparent(trace_id, span_id),
            }
            if attempts:
                message["retry"] = attempts
                if wire_span is not None:
                    wire_span.tags["retry"] = attempts
            message.update(fields)
            try:
                text = protocol.dumps(message)
            except (TypeError, ValueError) as exc:
                raise WireFormatError(
                    "request is not JSON-serializable (parameters must be "
                    "plain values): %s" % (exc,)) from exc
            try:
                if self._ws is None:
                    raise ConnectionError("connection is down")
                return self._roundtrip(request_id, text)
            except (OSError, ConnectionError) as exc:
                if self._ws is not None:
                    self._ws.close()
                    self._ws = None
                if self._in_transaction:
                    # The server rolled our transaction back when the
                    # connection died; resuming silently would commit
                    # half a unit of work.
                    self._in_transaction = False
                    raise TransactionError(
                        "connection lost inside an open transaction; the "
                        "server rolled it back — reconnect and retry the "
                        "whole transaction") from exc
                self._redial(exc)  # raises when reconnection is off/exhausted
                attempts += 1

    def _roundtrip(self, request_id, text):
        ws = self._ws
        ws.send_text(text)
        rows, conditions, chunks = [], {}, 0
        while True:
            _opcode, payload = ws.recv_message()
            frame = protocol.loads(payload)
            if frame.get("id") != request_id:
                continue  # stale frames from an abandoned request
            kind = frame.get("type")
            if kind == "rows":
                base = len(rows)
                rows.extend(frame.get("rows", ()))
                for offset, condition in (frame.get("conditions") or {}).items():
                    conditions[str(base + int(offset))] = condition
                chunks += 1
                continue
            if kind == "done":
                self._in_transaction = bool(frame.get("in_transaction"))
                if not frame.get("ok"):
                    protocol.raise_wire_error(frame.get("error", {}))
                return frame, rows, conditions, chunks
            raise ProtocolError("unexpected frame type %r" % (kind,))

    # -- transactions ---------------------------------------------------------------

    @property
    def in_transaction(self):
        return self._in_transaction

    def begin(self):
        """Open a transaction on the server; returns a context-manager
        handle (nested transactions raise :class:`TransactionError`)."""
        self._call("begin")
        return RemoteTransaction(self)

    def transaction(self):
        """``with session.transaction():`` — begin now, commit on clean
        exit, roll back when the body raises."""
        return self.begin()

    def commit(self):
        self._call("commit")

    def rollback(self):
        self._call("rollback")

    # -- the cursor surface ---------------------------------------------------------

    def cursor(self):
        """A fresh :class:`RemoteCursor` (independent fetch position)."""
        self._check_open()
        return RemoteCursor(self)

    def execute(self, text, params=None):
        """Run one SQL statement on the default cursor; returns it."""
        self._check_open()
        return self._cursor.execute(text, params)

    def executemany(self, text, param_seq):
        self._check_open()
        return self._cursor.executemany(text, param_seq)

    def fetchone(self):
        return self._cursor.fetchone()

    def fetchmany(self, size=None):
        return self._cursor.fetchmany(size)

    def fetchall(self):
        return self._cursor.fetchall()

    @property
    def description(self):
        return self._cursor.description

    @property
    def rowcount(self):
        return self._cursor.rowcount

    @property
    def result(self):
        """The last statement's :class:`ResultSet` (or ``None``)."""
        return self._cursor.result

    # -- conveniences ---------------------------------------------------------------

    def sql(self, text, params=None):
        """Like :meth:`Session.sql`: run one statement, return its
        :class:`ResultSet` (``None`` for non-queries)."""
        cursor = RemoteCursor(self)
        cursor.execute(text, params)
        return cursor.result

    def ping(self):
        """Round-trip liveness probe; returns True when the server answered."""
        done, _rows, _conditions, _chunks = self._call("ping")
        return bool(done.get("ok"))

    def call(self, op, **fields):
        """Run one non-cursor protocol op and return its ``done`` frame.

        The generic-op channel: extension operations that carry their
        whole answer in the ``done`` frame's ``result`` field — the
        shard RPCs of :mod:`repro.shard` being the resident example —
        go through here instead of growing a dedicated method each.
        ``fields`` are embedded verbatim in the request frame; tracing
        and reconnect behave exactly as for :meth:`execute`.
        """
        done, _rows, _conditions, _chunks = self._call(op, **fields)
        return done

    def __repr__(self):
        state = "closed" if self._closed else (
            "in transaction" if self._in_transaction else "autocommit")
        return "<RemoteSession %s:%d db=%r (%s)>" % (
            self.host, self.port, self.db_name, state)
