"""Client connection pooling: a bounded pool of :class:`RemoteSession`s.

PR 7 shipped the reconnecting client and deferred pooling; the shard
coordinator's RPC layer (``repro.shard``) needed it, so here it is as a
general client facility.  A :class:`SessionPool` owns up to ``size``
live sessions against one server URL:

* :meth:`checkout` hands out an idle session, dials a fresh one while
  under capacity, and **blocks** (bounded by ``timeout``) when every
  session is in use — backpressure instead of connection storms.
* :meth:`checkin` returns a session to the idle stack (LIFO, so warm
  TCP connections are preferred and idle ones age out toward the ping).
* Sessions idle longer than ``ping_interval`` are liveness-checked with
  a protocol ``ping`` on checkout; a dead one is discarded and replaced
  with a fresh dial, so callers never receive a silently broken session.

Use it as a context manager per call::

    pool = SessionPool(server.url, size=4, token="s3cret")
    with pool.session() as session:
        rows = session.sql("SELECT k FROM t").rows()

Sessions themselves stay single-threaded by contract; the pool is what
makes one server safe to share across many calling threads.
"""

import threading
import time

from repro.util.errors import SessionError


class SessionPool:
    """A bounded, liveness-checked pool of remote sessions for one URL.

    Parameters
    ----------
    url:
        ``ws://host:port`` (or ``http://``) — as accepted by
        :func:`repro.client.connect`.
    size:
        Maximum live sessions (and therefore maximum concurrent
        checkouts).
    ping_interval:
        Seconds of idleness after which a checked-out session is
        liveness-pinged first; ``0`` pings on every checkout, ``None``
        never pings.
    checkout_timeout:
        Default bound on waiting for a free session when the pool is
        exhausted; :class:`SessionError` on expiry.
    token, db, timeout, reconnect, trace_rng, telemetry:
        Passed through to every dialed :class:`RemoteSession`.
    """

    def __init__(self, url, size=4, *, token=None, db=None, timeout=30.0,
                 reconnect=True, trace_rng=None, telemetry=None,
                 ping_interval=30.0, checkout_timeout=30.0):
        if size < 1:
            raise ValueError("SessionPool needs size >= 1")
        self.url = url
        self.size = size
        self.ping_interval = ping_interval
        self.checkout_timeout = checkout_timeout
        self._dial_kwargs = dict(
            token=token, db=db, timeout=timeout, reconnect=reconnect,
            trace_rng=trace_rng, telemetry=telemetry,
        )
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._idle = []       # (session, checkin_monotonic) LIFO stack
        self._live = 0        # dialed sessions, idle + checked out
        self._closed = False
        # Observability, mostly for tests and the shard coordinator.
        self.dials = 0
        self.pings = 0
        self.discarded = 0

    # -- dialing -----------------------------------------------------------------

    def _dial(self):
        from repro.client import connect

        session = connect(self.url, **self._dial_kwargs)
        self.dials += 1
        return session

    # -- checkout / checkin ------------------------------------------------------

    def checkout(self, timeout=None):
        """An open, live session; blocks while the pool is exhausted."""
        if timeout is None:
            timeout = self.checkout_timeout
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if self._closed:
                    raise SessionError("session pool is closed")
                if self._idle:
                    session, since = self._idle.pop()
                    idle_for = time.monotonic() - since
                else:
                    session, idle_for = None, 0.0
                    if self._live < self.size:
                        self._live += 1    # reserve the slot before dialing
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise SessionError(
                                "no free session in %.1fs (pool size %d, "
                                "all checked out)" % (timeout, self.size)
                            )
                        self._free.wait(remaining)
                        continue
            if session is None:
                try:
                    return self._dial()
                except BaseException:
                    with self._lock:
                        self._live -= 1
                        self._free.notify()
                    raise
            if self._verify(session, idle_for):
                return session
            # Dead session: drop it and dial a replacement in its slot.
            self._discard(session)
            try:
                return self._dial()
            except BaseException:
                with self._lock:
                    self._live -= 1
                    self._free.notify()
                raise

    def _verify(self, session, idle_for):
        """Whether an idle session is still usable (liveness ping)."""
        if session.closed:
            return False
        if self.ping_interval is None or idle_for < self.ping_interval:
            return True
        self.pings += 1
        try:
            return session.ping()
        except Exception:
            return False

    def _discard(self, session):
        self.discarded += 1
        try:
            session.close()
        except Exception:
            pass

    def checkin(self, session):
        """Return a checked-out session to the pool.

        A closed (or mid-transaction — its server-side state is no
        longer neutral) session is discarded instead, freeing its slot
        for a fresh dial.
        """
        reusable = not session.closed and not session.in_transaction
        with self._lock:
            pooled = reusable and not self._closed
            if pooled:
                self._idle.append((session, time.monotonic()))
            else:
                self._live -= 1
            self._free.notify()
        if not pooled:
            self._discard(session)

    def session(self):
        """``with pool.session() as s:`` — checkout now, checkin on exit."""
        return _PooledSession(self)

    # -- introspection / lifecycle -----------------------------------------------

    @property
    def idle_count(self):
        with self._lock:
            return len(self._idle)

    @property
    def in_use(self):
        with self._lock:
            return self._live - len(self._idle)

    @property
    def closed(self):
        return self._closed

    def close(self):
        """Close every idle session and refuse further checkouts.

        Sessions currently checked out stay usable until their
        :meth:`checkin`, which then closes them — a pool shutdown never
        yanks a connection out from under a caller mid-request.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._live -= len(idle)
            self._free.notify_all()
        for session, _since in idle:
            self._discard(session)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __repr__(self):
        return "<SessionPool %s size=%d live=%d idle=%d%s>" % (
            self.url, self.size, self._live, len(self._idle),
            " closed" if self._closed else "",
        )


class _PooledSession:
    """Context manager pairing one checkout with its checkin."""

    __slots__ = ("_pool", "_session")

    def __init__(self, pool):
        self._pool = pool
        self._session = None

    def __enter__(self):
        self._session = self._pool.checkout()
        return self._session

    def __exit__(self, exc_type, exc_value, traceback):
        session, self._session = self._session, None
        if session is not None:
            self._pool.checkin(session)
        return False
