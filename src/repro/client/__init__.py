"""The PIP wire client: ``connect(url, token)`` → a remote DB-API session.

The thin counterpart of :mod:`repro.server` — see ``docs/server.md`` for
the protocol and :mod:`repro.client.session` for the surface.

Example (against a server started elsewhere)::

    from repro.client import connect

    with connect("ws://127.0.0.1:8470", token="s3cret") as session:
        session.execute("SELECT k, v FROM t WHERE v > :floor", {"floor": 2.5})
        rows = session.fetchall()
        result = session.result          # full ResultSet: estimates, CIs, stats
"""

from urllib.parse import urlsplit

from repro.client.pool import SessionPool
from repro.client.reconnect import ReconnectPolicy
from repro.client.session import RemoteCursor, RemoteSession, RemoteTransaction

__all__ = ["connect", "RemoteSession", "RemoteCursor", "RemoteTransaction",
           "ReconnectPolicy", "SessionPool"]


def connect(url, token=None, db=None, timeout=30.0, reconnect=True,
            trace_rng=None, telemetry=None):
    """Open a :class:`RemoteSession` on a running PIP server.

    Parameters
    ----------
    url:
        ``ws://host:port`` (or ``http://host:port`` — same wire, the
        session endpoint upgrades).  ``PIPServer.url`` is accepted as-is.
    token:
        Auth token (sent as ``Authorization: Bearer``); required unless
        the server runs with auth disabled.
    db:
        Database name on a multi-database server; optional when the
        server hosts exactly one.
    timeout:
        Socket timeout in seconds for connect and each blocking read.
    reconnect:
        ``True`` (default) for the standard exponential-backoff-with-
        jitter policy, ``False`` to disable, or a configured
        :class:`ReconnectPolicy`.
    trace_rng:
        Optional seeded ``random.Random`` backing the session's
        traceparent ids — deterministic ids for tests.
    telemetry:
        Optional client-side :class:`~repro.obs.Telemetry`; with tracing
        enabled, every request is wrapped in a ``client.wire`` span that
        roots the distributed trace (see ``docs/observability.md``).
    """
    split = urlsplit(url if "//" in url else "ws://" + url)
    if split.scheme not in ("ws", "http", "wss", "https", ""):
        raise ValueError("unsupported URL scheme %r" % (split.scheme,))
    if split.hostname is None or split.port is None:
        raise ValueError("URL %r needs an explicit host and port" % (url,))
    return RemoteSession(
        split.hostname, split.port,
        token=token, db=db, timeout=timeout, reconnect=reconnect,
        trace_rng=trace_rng, telemetry=telemetry,
    )
