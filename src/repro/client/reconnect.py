"""Reconnect policy: exponential backoff with jitter.

Dropped WebSocket connections are a fact of life for a long-lived client
(server restart, idle-timeout middleboxes, flaky networks).  The policy
here is the classic one: delay doubles per consecutive failure from
``base_delay`` up to ``max_delay``, and each delay is multiplied by a
random factor in ``[1 - jitter, 1 + jitter]`` so a fleet of clients that
lost the same server does not stampede back in lockstep.

Deterministic by injection: tests pass their own ``rng`` and ``sleep``.
"""

import random
import time


class ReconnectPolicy:
    """How (and whether) a :class:`~repro.client.session.RemoteSession`
    re-dials after a dropped connection.

    Parameters
    ----------
    max_retries:
        Consecutive failed dials before giving up (the original error is
        re-raised).
    base_delay, max_delay:
        Exponential schedule bounds, in seconds: attempt ``n`` waits
        ``min(max_delay, base_delay * 2**n)`` before jitter.
    jitter:
        Fractional spread applied to every delay (0.25 → ±25%).
    rng, sleep:
        Injection points for tests; default :mod:`random` / ``time.sleep``.

    Example
    -------
    >>> policy = ReconnectPolicy(max_retries=3, base_delay=0.1, jitter=0.0,
    ...                          sleep=lambda s: None)
    >>> [round(d, 3) for d in (policy.delay(0), policy.delay(1), policy.delay(2))]
    [0.1, 0.2, 0.4]
    >>> ReconnectPolicy(max_delay=5.0, jitter=0.0).delay(30)
    5.0
    """

    def __init__(self, max_retries=5, base_delay=0.05, max_delay=5.0,
                 jitter=0.25, rng=None, sleep=None):
        if jitter < 0 or jitter >= 1:
            raise ValueError("jitter must be in [0, 1), got %r" % (jitter,))
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep if sleep is not None else time.sleep

    def delay(self, attempt):
        """The backoff for 0-based ``attempt``, jitter applied."""
        delay = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def wait(self, attempt):
        """Sleep out the backoff for ``attempt``; returns the delay used."""
        delay = self.delay(attempt)
        if delay > 0:
            self._sleep(delay)
        return delay
