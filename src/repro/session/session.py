"""Sessions: the per-caller unit of concurrency and the cursor surface.

``db.connect()`` returns a :class:`Session`.  A session is *not* a new
database — it shares tables, variables, the sample bank and the WAL with
every other session on the same :class:`~repro.core.database.PIPDatabase`
— it is the scope that owns:

* a **DB-API-shaped cursor surface** (:meth:`Session.execute`,
  :meth:`executemany`, :meth:`fetchone` / :meth:`fetchmany` /
  :meth:`fetchall`, :attr:`description`, :attr:`rowcount`), familiar to
  anyone who has used ``sqlite3``;
* the existing conveniences — :meth:`sql`, :meth:`prepare`,
  :meth:`query` — plus the Python mutation API, all routed through the
  session so they participate in its transaction;
* **transactions**: ``with session.transaction():`` (or ``begin()`` /
  ``commit()`` / ``rollback()``, also reachable as SQL ``BEGIN`` /
  ``COMMIT`` / ``ROLLBACK`` statements) with buffered writes, snapshot
  reads, and atomic WAL-framed commits (see
  :mod:`repro.session.transaction`).

Thread discipline: one session per thread (DB-API threadsafety level 1
in spirit) — the *database* is safe to share across threads through
multiple sessions, a single session object is not.  Closed sessions, and
sessions on a closed database, raise
:class:`~repro.util.errors.SessionError` — never ``AttributeError``.
"""

from repro.util.errors import SessionError, TransactionError


class Cursor:
    """A DB-API-shaped cursor over one session.

    Lightweight: all execution state lives in the session/database; the
    cursor only tracks its own fetch position so several cursors on one
    session don't clobber each other's iteration.  ``Session`` itself
    exposes the same surface through an implicit default cursor.
    """

    arraysize = 1

    def __init__(self, session):
        self.session = session
        self._rows = []
        self._position = 0
        self._description = None
        self._rowcount = -1
        self.result = None  # the full ResultSet (estimates, plan) for queries
        self._closed = False

    # -- execution ----------------------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise SessionError("cursor is closed")
        self.session._check_open()

    def execute(self, text, params=None):
        """Run one SQL statement; returns the cursor (chain ``fetch*``)."""
        self._check_open()
        out, plan = self.session._run_statement(text, params)
        self._install(out, plan)
        return self

    def executemany(self, text, param_seq):
        """Run one statement once per parameter set (prepared once).

        ``rowcount`` accumulates across executions for DML — inserted
        rows for INSERT, affected rows for UPDATE/DELETE (the DB-API
        contract); result rows are not retained.
        """
        from repro.engine import plan as P

        self._check_open()
        statement = self.session.prepare(text)
        template = statement.plan
        total = 0
        counted = False
        for params in param_seq:
            out = statement.run(params)
            if isinstance(out, int):
                total += out
                counted = True
            elif isinstance(template, P.InsertRows):
                total += len(template.rows)
                counted = True
        self._rows = []
        self._position = 0
        self._description = None
        self._rowcount = total if counted else -1
        self.result = None
        return self

    def _install(self, out, plan):
        from repro.engine import plan as P
        from repro.engine.results import ResultSet

        self._rows = []
        self._position = 0
        self._description = None
        self._rowcount = -1
        self.result = None
        if isinstance(out, ResultSet):
            self.result = out
            self._rows = out.rows()
            self._rowcount = len(self._rows)
            table = out.to_ctable()
            self._description = [
                (column.name, column.ctype, None, None, None, None, None)
                for column in table.schema.columns
            ]
        elif isinstance(out, int):
            self._rowcount = out  # DELETE / UPDATE affected-row count
        elif isinstance(plan, P.InsertRows):
            self._rowcount = len(plan.rows)
        return self

    # -- fetching ------------------------------------------------------------------

    @property
    def description(self):
        """DB-API 7-tuples (name, type, …) for the last query, else None."""
        return self._description

    @property
    def rowcount(self):
        """Rows returned (SELECT), affected (INSERT/DELETE/UPDATE), or -1."""
        return self._rowcount

    def fetchone(self):
        """The next result row as a plain tuple, or ``None`` when done."""
        self._check_open()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size=None):
        """Up to ``size`` rows (default :attr:`arraysize`)."""
        self._check_open()
        if size is None:
            size = self.arraysize
        chunk = self._rows[self._position : self._position + size]
        self._position += len(chunk)
        return chunk

    def fetchall(self):
        """Every remaining row of the last result."""
        self._check_open()
        chunk = self._rows[self._position :]
        self._position = len(self._rows)
        return chunk

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self):
        """Release the cursor (idempotent; the session stays open)."""
        self._closed = True
        self._rows = []
        self.result = None

    def __repr__(self):
        state = "closed" if self._closed else "%d rows" % (len(self._rows),)
        return "<Cursor (%s)>" % (state,)


class SessionStatement:
    """A prepared statement bound to a session.

    Wraps :class:`~repro.engine.prepared.PreparedStatement` so repeated
    runs execute inside the session's context — honouring its open
    transaction and refusing after close — while keeping the
    parse-once/bind-many fast path.
    """

    __slots__ = ("session", "_statement")

    def __init__(self, session, statement):
        self.session = session
        self._statement = statement

    @property
    def text(self):
        return self._statement.text

    @property
    def plan(self):
        """The cached (template) logical plan."""
        return self._statement.plan

    @property
    def param_names(self):
        return self._statement.param_names

    def run(self, params=None, **named):
        self.session._check_open()
        with self.session.db.activate(self.session):
            return self._statement.run(params, **named)

    __call__ = run

    def explain(self, params=None, **named):
        return self._statement.explain(params, **named)

    def __repr__(self):
        return "<SessionStatement %r>" % (self._statement.text.strip()[:48],)


class Session:
    """One caller's handle on a shared :class:`PIPDatabase`.

    Create with :meth:`PIPDatabase.connect`; usable as a context manager
    (``with db.connect() as session:`` closes — rolling back any open
    transaction — on exit).
    """

    def __init__(self, db):
        self.db = db
        self._closed = False
        self._transaction = None
        self._cursor = Cursor(self)

    # -- lifecycle ----------------------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise SessionError(
                "session is closed; open a new one with db.connect()"
            )
        if self.db.is_closed:
            raise SessionError(
                "the database behind this session is closed; reopen it "
                "before executing statements"
            )

    @property
    def closed(self):
        return self._closed

    def close(self):
        """Close the session (idempotent).

        An open transaction is **rolled back** — staged writes are
        discarded, exactly as if the process had died before commit.
        Further ``execute()`` calls raise :class:`SessionError`.
        """
        if self._closed:
            return
        if self._transaction is not None and self._transaction.is_active:
            self._transaction.rollback()
        self._transaction = None
        self._closed = True
        self.db._sessions.discard(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # -- transactions ---------------------------------------------------------------

    @property
    def current_transaction(self):
        """The open :class:`Transaction`, or ``None`` in autocommit."""
        return self._transaction

    @property
    def in_transaction(self):
        return self._transaction is not None

    def begin(self):
        """Open a transaction; returns the :class:`Transaction`.

        Nested transactions are rejected with :class:`TransactionError`
        (there are no savepoints — commit or roll back first).
        """
        from repro.session.transaction import Transaction

        self._check_open()
        if self._transaction is not None:
            raise TransactionError(
                "a transaction is already open on this session; nested "
                "transactions are not supported"
            )
        self._transaction = Transaction(self)
        return self._transaction

    def transaction(self):
        """``with session.transaction():`` — begin now, commit on clean
        exit, roll back when the body raises."""
        return self.begin()

    def commit(self):
        """Commit the open transaction (:class:`TransactionError` if none)."""
        self._check_open()
        if self._transaction is None:
            raise TransactionError("no transaction is open on this session")
        self._transaction.commit()

    def rollback(self):
        """Roll back the open transaction (:class:`TransactionError` if none)."""
        self._check_open()
        if self._transaction is None:
            raise TransactionError("no transaction is open on this session")
        self._transaction.rollback()

    def _finish_transaction(self, txn):
        if self._transaction is txn:
            self._transaction = None

    # -- statement execution --------------------------------------------------------

    def _run_statement(self, text, params):
        """Parse/plan/execute one statement inside this session's context;
        returns ``(outcome, bound_plan)``.  One shared pipeline with
        ``db.sql`` — see :meth:`PreparedStatement.run_with_plan`."""
        from repro.engine.prepared import PreparedStatement

        with self.db.activate(self):
            return PreparedStatement(self.db, text).run_with_plan(params)

    # -- the cursor surface (delegating to an implicit default cursor) -------------

    def cursor(self):
        """A fresh :class:`Cursor` (independent fetch position)."""
        self._check_open()
        return Cursor(self)

    def execute(self, text, params=None):
        """Run one SQL statement on the default cursor; returns it.

        Example
        -------
        >>> from repro import PIPDatabase
        >>> session = PIPDatabase().connect()
        >>> _ = session.execute("CREATE TABLE t (k str, v float)")
        >>> session.execute("INSERT INTO t VALUES ('a', 1.0), ('b', 2.0)").rowcount
        2
        >>> cursor = session.execute("SELECT k, v FROM t")
        >>> cursor.fetchone()
        ('a', 1.0)
        >>> cursor.fetchall()
        [('b', 2.0)]
        """
        self._check_open()
        return self._cursor.execute(text, params)

    def executemany(self, text, param_seq):
        """Prepared repetition of one statement; see :meth:`Cursor.executemany`."""
        self._check_open()
        return self._cursor.executemany(text, param_seq)

    def fetchone(self):
        return self._cursor.fetchone()

    def fetchmany(self, size=None):
        return self._cursor.fetchmany(size)

    def fetchall(self):
        return self._cursor.fetchall()

    @property
    def description(self):
        return self._cursor.description

    @property
    def rowcount(self):
        return self._cursor.rowcount

    @property
    def result(self):
        """The last statement's full :class:`ResultSet` (or ``None``)."""
        return self._cursor.result

    # -- conveniences (the pre-session surface, session-routed) ---------------------

    def sql(self, text, params=None, explain=False):
        """Like :meth:`PIPDatabase.sql`, inside this session's context."""
        self._check_open()
        with self.db.activate(self):
            return self.db.sql(text, params=params, explain=explain)

    def prepare(self, text):
        """Parse + plan once; returns a session-bound prepared statement."""
        from repro.engine.prepared import PreparedStatement

        self._check_open()
        with self.db.activate(self):
            return SessionStatement(self, PreparedStatement(self.db, text))

    def query(self, name, alias=None):
        """Fluent builder rooted at a stored table, session-routed (lazy
        execution still sees this session's transaction overlay)."""
        from repro.engine.builder import QueryBuilder

        self._check_open()
        return QueryBuilder.scan(self.db, name, alias=alias, session=self)

    builder = query

    # Python mutation/catalog API, routed through the session so calls
    # inside an open transaction stage instead of applying.

    def _delegate(self, method, *args, **kwargs):
        self._check_open()
        with self.db.activate(self):
            return getattr(self.db, method)(*args, **kwargs)

    def table(self, name):
        return self._delegate("table", name)

    def create_table(self, name, columns):
        return self._delegate("create_table", name, columns)

    def drop_table(self, name):
        return self._delegate("drop_table", name)

    def insert(self, name, values, condition=None):
        from repro.symbolic.conditions import TRUE

        return self._delegate(
            "insert", name, values, TRUE if condition is None else condition
        )

    def insert_many(self, name, rows, conditions=None):
        return self._delegate("insert_many", name, rows, conditions)

    def delete(self, name, where=None):
        return self._delegate("delete", name, where)

    def update(self, name, assignments, where=None):
        return self._delegate("update", name, assignments, where)

    def register(self, name, table):
        return self._delegate("register", name, table)

    def materialize(self, name, table):
        return self._delegate("materialize", name, table)

    def repair_key(self, name, key_columns, probability_column, new_name=None):
        return self._delegate(
            "repair_key", name, key_columns, probability_column, new_name
        )

    def create_variable(self, distribution, params):
        return self._delegate("create_variable", distribution, params)

    def create_variable_expr(self, distribution, params):
        return self._delegate("create_variable_expr", distribution, params)

    def register_distribution(self, cls_or_instance, replace=False):
        return self._delegate(
            "register_distribution", cls_or_instance, replace=replace
        )

    def __repr__(self):
        state = "closed" if self._closed else (
            "in transaction" if self.in_transaction else "autocommit"
        )
        return "<Session on %r (%s)>" % (self.db, state)
