"""Sessions & transactions: the concurrency surface of the PIP database.

``db.connect()`` → :class:`Session` (DB-API-shaped cursor +
``sql()``/``prepare()``/``query()`` conveniences) →
``session.transaction()`` → :class:`Transaction` (buffered write intents,
snapshot-isolated reads, atomic WAL-framed commit).  See
``docs/sessions.md`` for the full model.
"""

from repro.session.session import Cursor, Session, SessionStatement
from repro.session.transaction import Transaction
from repro.util.errors import SessionError, TransactionError

__all__ = [
    "Session",
    "Cursor",
    "SessionStatement",
    "Transaction",
    "SessionError",
    "TransactionError",
]
