"""Transactions: buffered write intents over a copy-on-write snapshot.

A :class:`Transaction` turns every mutation a session issues between
``begin()`` and ``commit()`` into a **write intent**: a logical record in
exactly the write-ahead log's format, applied immediately to a *private*
copy of the affected table (so the transaction reads its own writes) and
to nothing else.  Until commit, the shared database state is untouched —
a concurrent reader can never observe an uncommitted row, because
uncommitted rows live only in this object.

Commit is atomic on both axes the paper's host-DBMS framing cares about:

* **Durability** — the buffered records are journaled inside a
  ``txn_begin`` … ``txn_commit`` WAL frame (appended contiguously under
  the database's write lock).  Recovery replays a frame only when its
  commit record made it to disk; a torn or aborted frame is discarded
  wholesale (see :mod:`repro.storage.recovery`).
* **Visibility** — the private tables are *swapped into* the shared
  catalog under the write lock, while reader statements hold the read
  lock.  Readers see the state before the commit or after it, never a
  half-applied middle.

Isolation is snapshot-style with first-committer-wins conflict checking:
reads resolve against the table map captured at ``begin()`` plus the
overlay, and commit refuses (``TransactionError``) when another session
has committed to any table this transaction wrote since it began.  The
snapshot is a map of table *objects*: it freezes out every transactional
writer (their commits swap in new objects, leaving ours untouched), while
**autocommit** statements by other callers mutate stored tables in place
and therefore remain visible mid-transaction — against autocommit
writers the guarantee is statement-level (the RW lock: never a
half-applied statement), not repeatable-read.  Mixing autocommit writers
with open transactions on the same table trades that anomaly for the
bit-identical legacy behaviour of ``db.sql``; use transactions on both
sides when full snapshot isolation matters.
Rollback discards the buffers, returns the transaction's unused variable
identifiers to the factory (so the vid sequence — and every
seed-addressed sample-bank key — matches a run in which the transaction
never happened), and notably does **not** touch the sample bank: a
rolled-back write never evicts warm samples.  Invalidation for committed
work fires once per transaction, not once per buffered statement.
"""

import pickle

from repro.ctables.schema import Schema
from repro.ctables.table import CTable
from repro.util.errors import SchemaError, TransactionError

#: Transaction lifecycle states.
ACTIVE = "active"
COMMITTED = "committed"
ROLLED_BACK = "rolled-back"


class Transaction:
    """One unit of work on a session (use ``with session.transaction():``)."""

    def __init__(self, session):
        db = session.db
        self.session = session
        self.db = db
        self.txn_id = db._allocate_txn_id()
        self.state = ACTIVE
        with db._rwlock.read():
            # The begin-time snapshot: reads resolve here, and the version
            # map anchors first-committer-wins conflict detection.
            self._snapshot = dict(db.tables)
            self._versions_at_begin = dict(db._table_versions)
        self._overlay = {}  # name -> private (or txn-created) CTable
        self._shared_overlay = set()  # overlay names still aliasing snapshot objects
        self._cow_bases = {}  # name -> committed object its overlay copy evolved from
        self._dropped = set()
        self._write_versions = {}  # name -> begin-time version, first write touch
        self._version_guards = {}  # read dependencies checked even when clean
        self._records = []  # WAL-format intent records, in statement order
        self._touched_variables = set()
        self._staged_distributions = {}
        self._vid_savepoint = db.factory.savepoint()
        self._vids_allocated = 0  # staged create_variable calls (rollback proof)
        telemetry = getattr(db, "telemetry", None)
        if telemetry is not None:
            telemetry.on_txn_event("begin")

    # -- state guards -------------------------------------------------------------

    def _check_active(self, action):
        if self.state != ACTIVE:
            raise TransactionError(
                "cannot %s a transaction that is already %s" % (action, self.state)
            )

    @property
    def is_active(self):
        return self.state == ACTIVE

    # -- read path ----------------------------------------------------------------

    def _visible_items(self):
        """(name, table) pairs as this transaction sees them."""
        merged = {
            name: table
            for name, table in self._snapshot.items()
            if name not in self._dropped and name not in self._overlay
        }
        merged.update(self._overlay)
        return merged

    def resolve_table(self, name):
        """The table ``name`` as seen by this transaction (overlay first,
        then the begin-time snapshot); ``SchemaError`` when absent."""
        if name in self._overlay:
            return self._overlay[name]
        if name not in self._dropped and name in self._snapshot:
            return self._snapshot[name]
        known = ", ".join(sorted(self._visible_items()))
        raise SchemaError("no table %r (have: %s)" % (name, known)) from None

    # -- write path ---------------------------------------------------------------

    def _note_write(self, name):
        """Record the begin-time version of a name the first time the
        transaction writes it (commit re-checks it under the write lock)."""
        self._write_versions.setdefault(name, self._versions_at_begin.get(name, 0))

    def _note_guard(self, name):
        """Record a *read* dependency on ``name``'s begin-time version.

        Used where the staged record's meaning depends on another table's
        committed identity (``register_alias``'s source): the commit must
        conflict if that table moved, even though this transaction never
        wrote it."""
        self._version_guards.setdefault(
            name, self._versions_at_begin.get(name, 0)
        )

    def _writable(self, name):
        """The private copy of ``name``, created on first write.

        Every visible alias of the same object is repointed at the one
        copy, so a transactional write through any alias keeps the shared
        identity — exactly the autocommit (and WAL-replay) semantics.
        """
        table = self.resolve_table(name)
        if name in self._overlay and name not in self._shared_overlay:
            return table
        copy = table.copy()  # shallow, rows shared, no watchers
        for alias, stored in list(self._visible_items().items()):
            if stored is table:
                self._note_write(alias)
                self._overlay[alias] = copy
                self._shared_overlay.discard(alias)
                self._cow_bases[alias] = table
        return copy

    def _touch_rows(self, rows):
        for row in rows:
            self._touched_variables |= row.variables()

    # -- staged mutations (called from the database's entry points) ---------------

    def stage_create_table(self, name, columns):
        self._check_active("mutate through")
        if name in self._visible_items():
            raise SchemaError("table %r already exists" % (name,))
        self._note_write(name)
        table = CTable(Schema(columns), name=name)
        self._overlay[name] = table
        self._shared_overlay.discard(name)
        self._dropped.discard(name)
        self._records.append(
            {"op": "create_table", "name": name, "columns": list(columns)}
        )
        return table

    def stage_drop_table(self, name):
        self._check_active("mutate through")
        table = self.resolve_table(name)
        self._note_write(name)
        self._overlay.pop(name, None)
        self._shared_overlay.discard(name)
        self._dropped.add(name)
        # If the object survives under another visible name (alias) its
        # cached samples stay relevant; otherwise the commit invalidates.
        if not any(t is table for t in self._visible_items().values()):
            self._touched_variables |= table.variables()
        self._records.append({"op": "drop_table", "name": name})

    def stage_insert(self, name, values, condition):
        self._check_active("mutate through")
        table = self._writable(name)
        before = len(table.rows)
        table.add_row(values, condition)
        if len(table.rows) > before:
            self._touch_rows([table.rows[-1]])
        self._records.append(
            {
                "op": "insert",
                "name": name,
                "values": tuple(values),
                "condition": condition,
            }
        )

    def stage_insert_many(self, name, pairs):
        self._check_active("mutate through")
        table = self._writable(name)
        applied = []
        try:
            for values, condition in pairs:
                before = len(table.rows)
                table.add_row(values, condition)
                if len(table.rows) > before:
                    self._touch_rows([table.rows[-1]])
                applied.append((tuple(values), condition))
        finally:
            # Stage exactly what reached the overlay — a mid-batch schema
            # error keeps overlay and intent log agreeing, mirroring the
            # autocommit journal discipline.
            if applied:
                self._records.append(
                    {"op": "insert_many", "name": name, "pairs": applied}
                )
        return table

    def stage_delete(self, name, where):
        self._check_active("mutate through")
        table = self._writable(name)
        doomed_rows, doomed_indices = self.db._matching_rows(table, where, "DELETE")
        if doomed_rows:
            table.remove_rows(doomed_rows)
            self._touch_rows(doomed_rows)
            self._records.append(
                {"op": "delete", "name": name, "indices": doomed_indices}
            )
        return len(doomed_rows)

    def stage_update(self, name, assignments, where):
        self._check_active("mutate through")
        table = self._writable(name)
        updates = self.db._compute_updates(table, assignments, where)
        if updates:
            old_rows = [table.rows[index] for index, _values in updates]
            table.update_rows(updates)
            self._touch_rows(old_rows)
            self._touch_rows(table.rows[index] for index, _values in updates)
            self._records.append({"op": "update", "name": name, "updates": updates})
        return len(updates)

    def stage_register(self, name, table):
        self._check_active("mutate through")
        visible = self._visible_items()
        replaced = visible.get(name)
        if replaced is not None and replaced is not table:
            self._note_write(name)
            if not any(
                t is replaced for n, t in visible.items() if n != name
            ):
                self._touched_variables |= replaced.variables()
        aliases = [
            stored_name
            for stored_name, stored in visible.items()
            if stored is table and stored_name != name
        ]
        self._note_write(name)
        shares_snapshot = any(t is table for t in self._snapshot.values())
        if not shares_snapshot:
            table.name = name
        self._overlay[name] = table
        if shares_snapshot:
            self._shared_overlay.add(name)
        else:
            self._shared_overlay.discard(name)
        self._dropped.discard(name)
        if aliases:
            # The record's meaning is "bind `name` to whatever `source`
            # is at replay time": commit must conflict if another session
            # moved the source after our begin, or memory (the begin-time
            # object) and recovery (the new object) would diverge.
            self._note_guard(aliases[0])
            self._records.append(
                {"op": "register_alias", "name": name, "source": aliases[0]}
            )
        else:
            self._records.append(
                {
                    "op": "register",
                    "name": name,
                    "table_name": table.name,
                    "columns": [(c.name, c.ctype) for c in table.schema.columns],
                    "rows": [(row.values, row.condition) for row in table.rows],
                }
            )
        return table

    def stage_create_variable(self, distribution, params):
        self._check_active("mutate through")
        created = self.db.factory.create(distribution, params)
        self._vids_allocated += 1
        vid = created[0].vid if isinstance(created, list) else created.vid
        # The vid is allocated now but journaled at commit: recording it
        # lets replay reproduce this exact allocation even when autocommit
        # creations were journaled between our begin and our frame.
        self._records.append(
            {
                "op": "create_variable",
                "dist_name": distribution,
                "params": tuple(params),
                "vid": vid,
            }
        )
        return created

    def stage_register_distribution(self, instance):
        self._check_active("mutate through")
        self._staged_distributions[instance.name.lower()] = instance
        self._records.append({"op": "register_distribution", "instance": instance})

    # -- commit / rollback ----------------------------------------------------------

    def _dirty_names(self):
        """Names whose committed state this transaction actually changes.

        A write that matched zero rows (``UPDATE … WHERE`` nothing) staged
        no record: its copy-on-write overlay is byte-identical to the
        base, and swapping it in would bump versions and fail other
        transactions with phantom conflicts.  Dirtiness is derived from
        the staged records, then widened to every alias sharing a dirty
        overlay object (aliases must swap together), plus drops.
        """
        named = {
            record["name"] for record in self._records if "name" in record
        }
        dirty_objects = {
            id(self._overlay[name]) for name in named if name in self._overlay
        }
        dirty = set(named) | self._dropped
        dirty |= {
            name
            for name, table in self._overlay.items()
            if id(table) in dirty_objects
        }
        return dirty

    def commit(self):
        """Apply every buffered intent atomically; see the module docstring.

        Raises :class:`TransactionError` on a write-write conflict (the
        transaction stays open so the caller can inspect and roll back —
        the ``with session.transaction():`` form does so automatically).
        """
        self._check_active("commit")
        db = self.db
        telemetry = getattr(db, "telemetry", None)
        if telemetry is not None and telemetry.tracer.enabled:
            with telemetry.tracer.span("txn.commit", txn=self.txn_id):
                self._commit_locked(db, telemetry)
        else:
            self._commit_locked(db, telemetry)
        self.state = COMMITTED
        self.session._finish_transaction(self)

    def _commit_locked(self, db, telemetry):
        """The lock-holding middle of :meth:`commit` (span-wrappable)."""
        dirty = self._dirty_names()
        with db._rwlock.write():
            db._check_writable()
            checks = dict(self._version_guards)
            checks.update(
                (name, version)
                for name, version in self._write_versions.items()
                if name in dirty  # touched but unchanged: no conflict to claim
            )
            for name, base_version in checks.items():
                if db.table_version(name) != base_version:
                    if telemetry is not None:
                        telemetry.on_txn_event("conflict")
                    raise TransactionError(
                        "write-write conflict: table %r was committed by "
                        "another session after this transaction began" % (name,)
                    )
            manager = db._durability
            framed = (
                manager is not None and manager.active and bool(self._records)
            )
            if framed:
                # Pre-validate serialization before the frame opens: an
                # unpicklable staged value must fail the commit cleanly
                # (transaction stays open, nothing journaled) instead of
                # dying mid-frame and leaving a dangling txn_begin that
                # would swallow later committed records at recovery.
                for record in self._records:
                    pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
                manager.journal("txn_begin", txn=self.txn_id)
                try:
                    for record in self._records:
                        manager.journal_record(record)
                except BaseException:
                    self._journal_abort(manager)
                    raise
            try:
                self._apply_to_memory(dirty)
            except BaseException:
                if framed:
                    self._journal_abort(manager)
                raise
            if framed:
                manager.journal("txn_commit", txn=self.txn_id)
            # Everything this transaction allocated is committed state now;
            # no later rollback (any session, any thread) may re-mint it.
            db.factory.mark_durable()
            # One invalidation per committed transaction — never one per
            # buffered statement, and never any on rollback.
            if self._touched_variables:
                db.sample_bank.invalidate_variables(self._touched_variables)
        if telemetry is not None:
            telemetry.on_txn_event("commit")

    def _journal_abort(self, manager):
        """Best-effort frame close after a mid-commit failure.

        When the WAL itself is the casualty (manager poisoned), the
        append fails too — then the frame is left open on disk and the
        next recovery's frame-healing closes it (see
        ``DurabilityManager.recover``)."""
        try:
            manager.journal("txn_abort", txn=self.txn_id)
        except Exception:
            pass

    def _apply_to_memory(self, dirty):
        """Swap staged state into the shared catalog (write lock held).

        Only ``dirty`` names move.  An old object replaced by its *own
        evolved copy* is merely unwatched — its variables live on in the
        replacement, so its cached samples stay warm; the row-level delta
        is covered by the single ``_touched_variables`` invalidation.
        Full release (cache invalidation) is reserved for objects that
        genuinely left the catalog: drops and register-replacements.
        """
        db = self.db
        released = []
        for name in self._dropped:
            if name in self._overlay:
                continue  # dropped then re-created: the overlay wins
            old = db.tables.pop(name, None)
            if old is not None:
                released.append(old)
            db._bump_version(name)
        for name, table in self._overlay.items():
            if name not in dirty:
                continue  # copied but never changed: leave the base alone
            old = db.tables.get(name)
            if old is not None and old is not table:
                released.append(old)
            table.name = name
            db.tables[name] = table
            db._watch(table)
            db._bump_version(name)
        # Release only after the final catalog is in place: an object that
        # kept (or gained) another name must keep its watcher and cache.
        evolved = {id(base) for base in self._cow_bases.values()}
        for old in released:
            if id(old) in evolved:
                db._unwatch(old)
            else:
                db._release_table(old)
        db._journaled_distributions.update(self._staged_distributions)

    def rollback(self):
        """Discard every buffered intent.

        No WAL traffic, no sample-bank invalidation; variable identifiers
        staged by this transaction are returned to the factory when it
        can prove sole ownership (no interleaved allocation by any other
        path — see :meth:`VariableFactory.rollback_to`), making the
        post-rollback state bit-identical to never having begun.  A
        variable handle kept from a rolled-back ``create_variable`` is
        void — like a row read from a dropped table — since its
        identifier may be re-minted.
        """
        self._check_active("roll back")
        self.db.factory.rollback_to(self._vid_savepoint, self._vids_allocated)
        self._overlay.clear()
        self._shared_overlay.clear()
        self._cow_bases.clear()
        self._dropped.clear()
        self._version_guards.clear()
        self._records = []
        self._touched_variables = set()
        self._staged_distributions = {}
        self.state = ROLLED_BACK
        telemetry = getattr(self.db, "telemetry", None)
        if telemetry is not None:
            telemetry.on_txn_event("rollback")
        self.session._finish_transaction(self)

    # -- context-manager protocol -----------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        if not self.is_active:
            return False  # committed/rolled back explicitly inside the body
        if exc_type is None:
            try:
                self.commit()
            except BaseException:
                # A failed commit (write-write conflict, WAL failure) must
                # not leave a zombie transaction on the session.
                if self.is_active:
                    self.rollback()
                raise
        else:
            self.rollback()
        return False

    def __repr__(self):
        return "<Transaction #%d %s: %d staged records>" % (
            self.txn_id,
            self.state,
            len(self._records),
        )
