"""The equation datatype (Section III-B).

"Rather than storing random variables directly, PIP employs the *equation*
datatype, a flattened parse tree of an arithmetic expression, where leaves
are random variables or constants."

Expressions here are immutable trees.  Arithmetic operators are overloaded
so fluent-API users can write ``price * increase + 3``; ordering comparisons
(``<``, ``<=``, ``>``, ``>=``) are overloaded to return *constraint atoms*
(see :mod:`repro.symbolic.atoms`), mirroring PIP's CTYPE operator
overloading.  ``==`` is deliberately left as structural equality so
expressions remain usable as dictionary keys; use :meth:`Expression.eq_` /
:meth:`Expression.ne_` to build equality atoms.

The query layer introduces a third leaf, :class:`ColumnTerm`, naming a table
column that has not been bound to a row yet.  Binding replaces column terms
with the row's cell values (constants or sub-expressions).
"""

import math

import numpy as np

from repro.symbolic.variables import RandomVariable
from repro.util.errors import PIPError, SchemaError


class Expression:
    """Base class for equation-tree nodes.  Immutable."""

    __slots__ = ()

    # Immutability blocks pickle's default slot restoration; the parallel
    # sampling workers receive bound expressions by pickle.
    def __getstate__(self):
        from repro.util.slotstate import slot_state

        return slot_state(self)

    def __setstate__(self, state):
        from repro.util.slotstate import restore_slot_state

        restore_slot_state(self, state)

    # -- tree interface -------------------------------------------------------

    def key(self):
        """A hashable structural identity tuple."""
        raise NotImplementedError

    def variables(self):
        """Frozen set of :class:`RandomVariable` leaves."""
        raise NotImplementedError

    def column_refs(self):
        """Frozen set of unbound column names."""
        raise NotImplementedError

    def evaluate(self, assignment):
        """Value under ``assignment`` (mapping variable key -> value)."""
        raise NotImplementedError

    def evaluate_batch(self, arrays):
        """Vectorised evaluation; ``arrays`` maps variable keys to ndarrays.

        Returns an ndarray or a scalar (scalars broadcast)."""
        raise NotImplementedError

    def substitute(self, mapping):
        """Replace variable leaves whose key appears in ``mapping``.

        Values may be numbers or expressions.  Returns a new expression."""
        raise NotImplementedError

    def bind_columns(self, row):
        """Replace :class:`ColumnTerm` leaves using ``row`` (name -> value)."""
        raise NotImplementedError

    def degree(self):
        """Polynomial degree in its random variables, or ``None``."""
        raise NotImplementedError

    def linear_form(self):
        """``(coeffs, constant)`` when the expression is affine, else None.

        ``coeffs`` maps variable keys to floats.  Expressions containing
        unbound columns are never affine (their value is unknown)."""
        raise NotImplementedError

    # -- conveniences -----------------------------------------------------------

    @property
    def is_constant(self):
        return not self.variables() and not self.column_refs()

    def const_value(self):
        """Value of a constant expression (raises if not constant)."""
        if not self.is_constant:
            raise PIPError("expression %s is not constant" % (self,))
        return self.evaluate({})

    # -- operator overloading (arithmetic) --------------------------------------

    def __add__(self, other):
        return binop("+", self, as_expression(other))

    def __radd__(self, other):
        return binop("+", as_expression(other), self)

    def __sub__(self, other):
        return binop("-", self, as_expression(other))

    def __rsub__(self, other):
        return binop("-", as_expression(other), self)

    def __mul__(self, other):
        return binop("*", self, as_expression(other))

    def __rmul__(self, other):
        return binop("*", as_expression(other), self)

    def __truediv__(self, other):
        return binop("/", self, as_expression(other))

    def __rtruediv__(self, other):
        return binop("/", as_expression(other), self)

    def __pow__(self, exponent):
        return binop("^", self, as_expression(exponent))

    def __neg__(self):
        return UnaryOp("-", self)

    # -- operator overloading (comparisons -> constraint atoms) -----------------

    def __gt__(self, other):
        from repro.symbolic.atoms import Atom

        return Atom(self, ">", as_expression(other))

    def __ge__(self, other):
        from repro.symbolic.atoms import Atom

        return Atom(self, ">=", as_expression(other))

    def __lt__(self, other):
        from repro.symbolic.atoms import Atom

        return Atom(self, "<", as_expression(other))

    def __le__(self, other):
        from repro.symbolic.atoms import Atom

        return Atom(self, "<=", as_expression(other))

    def eq_(self, other):
        """Equality constraint atom (``==`` stays structural equality)."""
        from repro.symbolic.atoms import Atom

        return Atom(self, "=", as_expression(other))

    def ne_(self, other):
        """Inequality (≠) constraint atom."""
        from repro.symbolic.atoms import Atom

        return Atom(self, "<>", as_expression(other))

    # -- structural equality ------------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, Expression):
            return self.key() == other.key()
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, Expression):
            return self.key() != other.key()
        return NotImplemented

    def __hash__(self):
        return hash(self.key())


class Constant(Expression):
    """A literal leaf: number, string, bool or None."""

    __slots__ = ("value",)

    def __init__(self, value):
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("Constant is immutable")

    def key(self):
        return ("const", self.value)

    def variables(self):
        return frozenset()

    def column_refs(self):
        return frozenset()

    def evaluate(self, assignment):
        return self.value

    def evaluate_batch(self, arrays):
        return self.value

    def substitute(self, mapping):
        return self

    def bind_columns(self, row):
        return self

    def degree(self):
        return 0

    def linear_form(self):
        if isinstance(self.value, (int, float)) and not isinstance(self.value, bool):
            return ({}, float(self.value))
        return None

    def __repr__(self):
        if isinstance(self.value, str):
            return "'%s'" % self.value
        return repr(self.value)


class VarTerm(Expression):
    """A random-variable leaf."""

    __slots__ = ("var",)

    def __init__(self, var):
        if not isinstance(var, RandomVariable):
            raise TypeError("VarTerm expects a RandomVariable")
        object.__setattr__(self, "var", var)

    def __setattr__(self, name, value):
        raise AttributeError("VarTerm is immutable")

    def key(self):
        return ("var",) + self.var.key

    def variables(self):
        return frozenset((self.var,))

    def column_refs(self):
        return frozenset()

    def evaluate(self, assignment):
        try:
            return assignment[self.var.key]
        except KeyError:
            raise PIPError(
                "assignment missing value for variable %r" % (self.var,)
            ) from None

    def evaluate_batch(self, arrays):
        try:
            return arrays[self.var.key]
        except KeyError:
            raise PIPError(
                "batch assignment missing variable %r" % (self.var,)
            ) from None

    def substitute(self, mapping):
        if self.var.key in mapping:
            return as_expression(mapping[self.var.key])
        return self

    def bind_columns(self, row):
        return self

    def degree(self):
        return 1

    def linear_form(self):
        return ({self.var.key: 1.0}, 0.0)

    def __repr__(self):
        return repr(self.var)


class ColumnTerm(Expression):
    """An unbound column reference, used only inside the query layer."""

    __slots__ = ("name",)

    def __init__(self, name):
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("ColumnTerm is immutable")

    def key(self):
        return ("col", self.name)

    def variables(self):
        return frozenset()

    def column_refs(self):
        return frozenset((self.name,))

    def evaluate(self, assignment):
        raise SchemaError("unbound column reference %r" % (self.name,))

    def evaluate_batch(self, arrays):
        raise SchemaError("unbound column reference %r" % (self.name,))

    def substitute(self, mapping):
        return self

    def bind_columns(self, row):
        if self.name in row:
            return as_expression(row[self.name])
        # Qualified reference against unqualified storage.
        if "." in self.name:
            suffix = self.name.split(".")[-1]
            if suffix in row:
                return as_expression(row[suffix])
        # Unqualified reference against qualified storage (unique suffix).
        matches = [k for k in row if k.split(".")[-1] == self.name]
        if len(matches) == 1:
            return as_expression(row[matches[0]])
        if len(matches) > 1:
            raise SchemaError("ambiguous column reference %r" % (self.name,))
        raise SchemaError("column %r not found while binding" % (self.name,))

    def degree(self):
        return None

    def linear_form(self):
        return None

    def __repr__(self):
        return self.name


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a ** b,
}


class BinOp(Expression):
    """Binary arithmetic node.  Ops: ``+ - * / ^``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _ARITH:
            raise PIPError("unknown arithmetic operator %r" % (op,))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError("BinOp is immutable")

    def key(self):
        return ("bin", self.op, self.left.key(), self.right.key())

    def variables(self):
        return self.left.variables() | self.right.variables()

    def column_refs(self):
        return self.left.column_refs() | self.right.column_refs()

    def evaluate(self, assignment):
        return _ARITH[self.op](
            self.left.evaluate(assignment), self.right.evaluate(assignment)
        )

    def evaluate_batch(self, arrays):
        return _ARITH[self.op](
            self.left.evaluate_batch(arrays), self.right.evaluate_batch(arrays)
        )

    def substitute(self, mapping):
        return binop(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def bind_columns(self, row):
        return binop(
            self.op, self.left.bind_columns(row), self.right.bind_columns(row)
        )

    def degree(self):
        dl = self.left.degree()
        dr = self.right.degree()
        if dl is None or dr is None:
            return None
        if self.op in ("+", "-"):
            return max(dl, dr)
        if self.op == "*":
            return dl + dr
        if self.op == "/":
            return dl if dr == 0 else None
        if self.op == "^":
            if dr != 0 or not self.right.is_constant:
                return None
            exponent = self.right.const_value()
            if isinstance(exponent, (int, float)) and float(exponent).is_integer():
                k = int(exponent)
                return dl * k if k >= 0 else None
            return None
        return None

    def linear_form(self):
        lf_left = self.left.linear_form()
        lf_right = self.right.linear_form()
        if self.op in ("+", "-"):
            if lf_left is None or lf_right is None:
                return None
            sign = 1.0 if self.op == "+" else -1.0
            coeffs = dict(lf_left[0])
            for var_key, coeff in lf_right[0].items():
                coeffs[var_key] = coeffs.get(var_key, 0.0) + sign * coeff
            coeffs = {k: c for k, c in coeffs.items() if c != 0.0}
            return (coeffs, lf_left[1] + sign * lf_right[1])
        if self.op == "*":
            if lf_left is not None and not lf_left[0] and lf_right is not None:
                factor = lf_left[1]
                return (
                    {k: factor * c for k, c in lf_right[0].items() if factor * c != 0.0},
                    factor * lf_right[1],
                )
            if lf_right is not None and not lf_right[0] and lf_left is not None:
                factor = lf_right[1]
                return (
                    {k: factor * c for k, c in lf_left[0].items() if factor * c != 0.0},
                    factor * lf_left[1],
                )
            return None
        if self.op == "/":
            if lf_right is not None and not lf_right[0] and lf_left is not None:
                divisor = lf_right[1]
                if divisor == 0.0:
                    return None
                return (
                    {k: c / divisor for k, c in lf_left[0].items()},
                    lf_left[1] / divisor,
                )
            return None
        if self.op == "^":
            if (
                lf_left is not None
                and not lf_left[0]
                and lf_right is not None
                and not lf_right[0]
            ):
                return ({}, lf_left[1] ** lf_right[1])
            return None
        return None

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.op, self.right)


class UnaryOp(Expression):
    """Unary negation."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        if op != "-":
            raise PIPError("unknown unary operator %r" % (op,))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name, value):
        raise AttributeError("UnaryOp is immutable")

    def key(self):
        return ("un", self.op, self.operand.key())

    def variables(self):
        return self.operand.variables()

    def column_refs(self):
        return self.operand.column_refs()

    def evaluate(self, assignment):
        return -self.operand.evaluate(assignment)

    def evaluate_batch(self, arrays):
        return -self.operand.evaluate_batch(arrays)

    def substitute(self, mapping):
        return UnaryOp(self.op, self.operand.substitute(mapping))

    def bind_columns(self, row):
        inner = self.operand.bind_columns(row)
        if isinstance(inner, Constant) and isinstance(inner.value, (int, float)):
            return Constant(-inner.value)
        return UnaryOp(self.op, inner)

    def degree(self):
        return self.operand.degree()

    def linear_form(self):
        inner = self.operand.linear_form()
        if inner is None:
            return None
        return ({k: -c for k, c in inner[0].items()}, -inner[1])

    def __repr__(self):
        return "(-%r)" % (self.operand,)


_FUNCS = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "least": np.minimum,
    "greatest": np.maximum,
}


class FuncTerm(Expression):
    """Scalar function application (exp, log, sqrt, abs, least, greatest…).

    These go beyond the paper's "simple algebraic operators"; the
    consistency checker simply skips atoms involving them (its weak-verdict
    path), exactly as Algorithm 3.2 line 11 prescribes for equations without
    a ``tighten`` implementation.
    """

    __slots__ = ("func", "args")

    def __init__(self, func, args):
        func = func.lower()
        if func not in _FUNCS:
            raise PIPError(
                "unknown function %r (known: %s)" % (func, ", ".join(sorted(_FUNCS)))
            )
        expected = 2 if func in ("least", "greatest") else 1
        if len(args) != expected:
            raise PIPError("%s() expects %d argument(s)" % (func, expected))
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, name, value):
        raise AttributeError("FuncTerm is immutable")

    def key(self):
        return ("func", self.func) + tuple(a.key() for a in self.args)

    def variables(self):
        out = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def column_refs(self):
        out = frozenset()
        for arg in self.args:
            out |= arg.column_refs()
        return out

    def evaluate(self, assignment):
        values = [arg.evaluate(assignment) for arg in self.args]
        return float(_FUNCS[self.func](*values))

    def evaluate_batch(self, arrays):
        values = [arg.evaluate_batch(arrays) for arg in self.args]
        return _FUNCS[self.func](*values)

    def substitute(self, mapping):
        return FuncTerm(self.func, [a.substitute(mapping) for a in self.args])

    def bind_columns(self, row):
        return FuncTerm(self.func, [a.bind_columns(row) for a in self.args])

    def degree(self):
        if all(arg.degree() == 0 for arg in self.args):
            return 0
        return None

    def linear_form(self):
        if all(arg.is_constant for arg in self.args):
            value = self.evaluate({})
            if isinstance(value, (int, float)):
                return ({}, float(value))
        return None

    def __repr__(self):
        return "%s(%s)" % (self.func, ", ".join(repr(a) for a in self.args))


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def as_expression(value):
    """Coerce a value into an :class:`Expression`.

    Numbers, strings, bools and None become :class:`Constant`;
    :class:`RandomVariable` becomes :class:`VarTerm`; expressions pass
    through unchanged.
    """
    if isinstance(value, Expression):
        return value
    if isinstance(value, RandomVariable):
        return VarTerm(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return Constant(value)
    if isinstance(value, np.generic):
        return Constant(value.item())
    raise TypeError("cannot convert %r to an expression" % (value,))


def binop(op, left, right):
    """Build a binary node with constant folding."""
    left = as_expression(left)
    right = as_expression(right)
    if (
        isinstance(left, Constant)
        and isinstance(right, Constant)
        and isinstance(left.value, (int, float))
        and isinstance(right.value, (int, float))
        and not isinstance(left.value, bool)
        and not isinstance(right.value, bool)
    ):
        try:
            return Constant(_ARITH[op](left.value, right.value))
        except (ZeroDivisionError, OverflowError, ValueError):
            pass  # keep the tree; evaluation will raise at sample time
    # Identity folds keep equations small after repeated rewriting.
    if op == "+":
        if isinstance(left, Constant) and left.value == 0:
            return right
        if isinstance(right, Constant) and right.value == 0:
            return left
    elif op == "-":
        if isinstance(right, Constant) and right.value == 0:
            return left
    elif op == "*":
        if isinstance(left, Constant) and left.value == 1:
            return right
        if isinstance(right, Constant) and right.value == 1:
            return left
        if (isinstance(left, Constant) and left.value == 0) or (
            isinstance(right, Constant) and right.value == 0
        ):
            return Constant(0.0)
    elif op == "/":
        if isinstance(right, Constant) and right.value == 1:
            return left
    elif op == "^":
        if isinstance(right, Constant) and right.value == 1:
            return left
    return BinOp(op, left, right)


def var(random_variable):
    """Shorthand: wrap a :class:`RandomVariable` as an expression."""
    return VarTerm(random_variable)


def col(name):
    """Shorthand: an unbound column reference."""
    return ColumnTerm(name)


def const(value):
    """Shorthand: a literal."""
    return Constant(value)


def func(name, *args):
    """Shorthand: a function application over coerced arguments."""
    return FuncTerm(name, [as_expression(a) for a in args])


def is_numeric(value):
    """True for ints/floats that are not bools (and not NaN strings…)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)
