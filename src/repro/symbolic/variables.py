"""Random variables (Section III-B).

A PIP random variable is "a unique identifier, a subscript (for
multi-variate distributions), a distribution class, and a set of parameters
for the distribution".  Variables are opaque while relational operators
manipulate them; only the sampling operators ever look inside.

Variables compare and hash by ``(vid, subscript)`` — two references to the
same identifier always denote the *same* random quantity, which is what
makes repeated occurrences within a query sample-consistent.
"""

import threading

from repro.distributions import get_distribution


class RandomVariable:
    """An opaque reference to one (component of a) random variable.

    Instances are immutable.  ``vid`` identifies the variable (or the joint
    family, for multivariate classes); ``subscript`` selects the component.
    """

    __slots__ = ("vid", "subscript", "dist_name", "params")

    def __init__(self, vid, dist_name, params, subscript=0):
        object.__setattr__(self, "vid", int(vid))
        object.__setattr__(self, "subscript", int(subscript))
        object.__setattr__(self, "dist_name", dist_name.lower())
        object.__setattr__(self, "params", tuple(params))

    def __setattr__(self, name, value):
        raise AttributeError("RandomVariable is immutable")

    def __reduce__(self):
        # Immutability blocks the default slot-restoring __setstate__;
        # rebuild through __init__ instead (parallel workers receive
        # sampling jobs — groups, conditions, bounds — by pickle).
        return (RandomVariable, (self.vid, self.dist_name, self.params, self.subscript))

    # -- identity ------------------------------------------------------------

    @property
    def key(self):
        """Hashable identity: ``(vid, subscript)``."""
        return (self.vid, self.subscript)

    def __eq__(self, other):
        if not isinstance(other, RandomVariable):
            return NotImplemented
        return self.key == other.key

    def __hash__(self):
        return hash(("rv",) + self.key)

    def __repr__(self):
        if self.subscript:
            return "X%d[%d]~%s" % (self.vid, self.subscript, self.dist_name)
        return "X%d~%s" % (self.vid, self.dist_name)

    # -- distribution access ---------------------------------------------------

    @property
    def distribution(self):
        """The registered distribution class instance."""
        return get_distribution(self.dist_name)

    @property
    def is_discrete(self):
        return self.distribution.is_discrete

    @property
    def is_multivariate(self):
        from repro.distributions import MultivariateDistribution

        return isinstance(self.distribution, MultivariateDistribution)

    def component(self, subscript):
        """The sibling component ``subscript`` of a multivariate family."""
        return RandomVariable(self.vid, self.dist_name, self.params, subscript)

    def marginal(self):
        """``(distribution, params)`` describing this component's marginal.

        For univariate variables this is just the variable's own class; for
        multivariate ones it is the component marginal when the class knows
        it, else ``None``.
        """
        dist = self.distribution
        if not self.is_multivariate:
            return (dist, dist.validate_params(self.params))
        described = dist.marginal(dist.validate_params(self.params), self.subscript)
        if described is None:
            return None
        name, params = described
        marginal_dist = get_distribution(name)
        return (marginal_dist, marginal_dist.validate_params(params))


class VariableFactory:
    """Allocates fresh variable identifiers.

    One factory per database; the paper's ``CREATE VARIABLE`` maps to
    :meth:`create`.  Allocation is thread-safe (concurrent sessions may
    create variables), and :meth:`savepoint`/:meth:`rollback_to` let a
    transaction return unused identifiers on rollback so the vid sequence
    — and with it every seed-addressed sample-bank key — stays
    bit-identical to a run in which the transaction never happened.
    """

    def __init__(self, start=1):
        self._next_vid = start
        self._lock = threading.Lock()
        # Identifiers below the floor are pinned (journaled, committed, or
        # escaped into a query result) and must never be handed out again,
        # whoever allocated them.
        self._floor = start

    def create(self, dist_name, params):
        """Create a variable (univariate) or a variable family (multivariate).

        Returns a single :class:`RandomVariable` for univariate classes, or
        a list of component variables for multivariate ones.
        """
        dist = get_distribution(dist_name)
        canonical = dist.validate_params(tuple(params))
        with self._lock:
            vid = self._next_vid
            self._next_vid += 1
        from repro.distributions import MultivariateDistribution

        if isinstance(dist, MultivariateDistribution):
            n = dist.dimension_of(canonical)
            return [
                RandomVariable(vid, dist_name, canonical, subscript=i)
                for i in range(n)
            ]
        return RandomVariable(vid, dist_name, canonical)

    def savepoint(self):
        """The allocation watermark for :meth:`rollback_to`."""
        with self._lock:
            return self._next_vid

    def mark_durable(self):
        """Raise the pin floor to the current watermark.

        Called whenever allocated identifiers outlive any possible
        rollback — autocommit ``create_variable`` (journaled), transaction
        commit, and ``create_variable()`` inside a SELECT (the variables
        escape in the result set): :meth:`rollback_to` never rewinds below
        the floor, so a pinned vid can never be minted twice.
        """
        with self._lock:
            self._floor = max(self._floor, self._next_vid)

    def rollback_to(self, savepoint, owned):
        """Return identifiers allocated since ``savepoint`` — but only when
        the rolling-back transaction can prove it owns **all** of them:
        ``owned`` is its own staged-allocation count, and the rewind
        happens only if exactly that many vids were handed out since the
        savepoint and none is pinned (:meth:`mark_durable`).  Any
        interleaved allocation — another session (same thread or not), an
        autocommit create, an escaping SELECT — makes the counts disagree
        or raises the floor, and the counter is left alone: a wasted vid
        gap is harmless, a re-minted vid is not.  Returns True when the
        rewind happened.
        """
        with self._lock:
            if savepoint >= self._floor and self._next_vid - savepoint == owned:
                self._next_vid = savepoint
                return True
            return False

    @property
    def variables_created(self):
        """How many identifiers have been handed out."""
        return self._next_vid - 1
