"""Symbolic layer: random variables, equations, atoms, conditions.

This is PIP's "lossless representation": relational operators manipulate
these objects opaquely, and the sampling operators receive the complete
expression + context only at the end of the query.
"""

from repro.symbolic.variables import RandomVariable, VariableFactory
from repro.symbolic.expression import (
    Expression,
    Constant,
    VarTerm,
    ColumnTerm,
    BinOp,
    UnaryOp,
    FuncTerm,
    as_expression,
    binop,
    var,
    col,
    const,
    func,
    is_numeric,
)
from repro.symbolic.atoms import Atom
from repro.symbolic.conditions import (
    Condition,
    Conjunction,
    Disjunction,
    TRUE,
    FALSE,
    conjunction_of,
    conjoin,
    disjoin,
)

__all__ = [
    "RandomVariable",
    "VariableFactory",
    "Expression",
    "Constant",
    "VarTerm",
    "ColumnTerm",
    "BinOp",
    "UnaryOp",
    "FuncTerm",
    "as_expression",
    "binop",
    "var",
    "col",
    "const",
    "func",
    "is_numeric",
    "Atom",
    "Condition",
    "Conjunction",
    "Disjunction",
    "TRUE",
    "FALSE",
    "conjunction_of",
    "conjoin",
    "disjoin",
]
