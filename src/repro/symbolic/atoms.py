"""Constraint atoms (Section II-A).

An atomic condition compares two equations with one of ``=, <>, <, <=, >,
>=``.  Atoms evaluate to booleans under a variable assignment, can be
negated exactly (the comparison set is closed under negation), and can be
*normalised* to ``lhs - rhs  op  0`` for the consistency checker's linear
analysis.
"""

import operator

import numpy as np

from repro.symbolic.expression import (
    Constant,
    Expression,
    as_expression,
    binop,
    is_numeric,
)
from repro.util.errors import PIPError

#: Comparison operators, their Python implementations and their negations.
_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NEGATION = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Mirror image: ``a op b``  <=>  ``b mirror(op) a``.
_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Atom:
    """One comparison between two equations.  Immutable."""

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs, op, rhs):
        if op == "!=":
            op = "<>"
        if op == "==":
            op = "="
        if op not in _OPS:
            raise PIPError("unknown comparison operator %r" % (op,))
        object.__setattr__(self, "lhs", as_expression(lhs))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "rhs", as_expression(rhs))

    def __setattr__(self, name, value):
        raise AttributeError("Atom is immutable")

    # Immutability blocks pickle's default slot restoration; the parallel
    # sampling workers receive group atoms by pickle.
    def __getstate__(self):
        from repro.util.slotstate import slot_state

        return slot_state(self)

    def __setstate__(self, state):
        from repro.util.slotstate import restore_slot_state

        restore_slot_state(self, state)

    # -- structure ------------------------------------------------------------

    def key(self):
        return ("atom", self.lhs.key(), self.op, self.rhs.key())

    def __eq__(self, other):
        if not isinstance(other, Atom):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return "%r %s %r" % (self.lhs, self.op, self.rhs)

    def variables(self):
        return self.lhs.variables() | self.rhs.variables()

    def column_refs(self):
        return self.lhs.column_refs() | self.rhs.column_refs()

    @property
    def is_deterministic(self):
        """True when no random variable or unbound column is involved."""
        return not self.variables() and not self.column_refs()

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, assignment):
        """Truth value under ``assignment`` (variable key -> value)."""
        left = self.lhs.evaluate(assignment)
        right = self.rhs.evaluate(assignment)
        try:
            return bool(_OPS[self.op](left, right))
        except TypeError:
            raise PIPError(
                "cannot compare %r and %r with %s" % (left, right, self.op)
            ) from None

    def evaluate_batch(self, arrays):
        """Vectorised truth values; returns a bool ndarray (or scalar bool)."""
        left = self.lhs.evaluate_batch(arrays)
        right = self.rhs.evaluate_batch(arrays)
        result = _OPS[self.op](np.asarray(left), np.asarray(right))
        return np.asarray(result, dtype=bool)

    def decided(self):
        """For deterministic atoms: the truth value; otherwise ``None``."""
        if not self.is_deterministic:
            return None
        return self.evaluate({})

    # -- transformations -----------------------------------------------------------

    def negate(self):
        """The complementary atom (exact: comparisons close under negation)."""
        return Atom(self.lhs, _NEGATION[self.op], self.rhs)

    def mirror(self):
        """Swap sides: ``a < b`` becomes ``b > a``."""
        return Atom(self.rhs, _MIRROR[self.op], self.lhs)

    def substitute(self, mapping):
        return Atom(self.lhs.substitute(mapping), self.op, self.rhs.substitute(mapping))

    def bind_columns(self, row):
        return Atom(self.lhs.bind_columns(row), self.op, self.rhs.bind_columns(row))

    def normalized(self):
        """``(difference_expression, op)`` with everything moved left.

        Only meaningful for numeric comparisons; returns ``None`` when
        either side is a non-numeric constant (e.g. a string equality, which
        the deterministic pre-pass already decides)."""
        for side in (self.lhs, self.rhs):
            if isinstance(side, Constant) and not is_numeric(side.value):
                return None
        return (binop("-", self.lhs, self.rhs), self.op)

    def linear_form(self):
        """Affine form of ``lhs - rhs`` (coeffs, constant), or ``None``."""
        normal = self.normalized()
        if normal is None:
            return None
        return normal[0].linear_form()

    def degree(self):
        """Polynomial degree of ``lhs - rhs`` or ``None``."""
        normal = self.normalized()
        if normal is None:
            return None
        return normal[0].degree()
