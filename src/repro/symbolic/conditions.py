"""C-table conditions.

The paper restricts row conditions to *conjunctions* of atoms without loss
of generality: disjunction is encoded through bag semantics (one row per
disjunct) and resurfaces only when ``distinct`` coalesces duplicate rows —
at which point the coalesced condition is a DNF disjunction of the original
conjunctions (Section III-B).

This module supplies both shapes:

* :class:`Conjunction` — the workhorse; an empty conjunction is TRUE.
* :class:`Disjunction` — DNF, produced by ``distinct`` and by negating a
  conjunction (needed by the difference operator and by ``expected_max``).

``FALSE`` is represented by the singleton :data:`FALSE`; operators treat it
absorbingly.  Deterministic atoms (no variables, no unbound columns) are
decided eagerly during conjunction so contradictions surface as ``FALSE``
immediately, mirroring PIP's clean-up of inconsistent tuples.
"""

import itertools

import numpy as np

from repro.symbolic.atoms import Atom
from repro.util.errors import PIPError


class Condition:
    """Base class for row conditions."""

    __slots__ = ()

    # Immutability blocks pickle's default slot restoration; the parallel
    # sampling workers receive DNF conditions by pickle.
    def __getstate__(self):
        from repro.util.slotstate import slot_state

        return slot_state(self)

    def __setstate__(self, state):
        from repro.util.slotstate import restore_slot_state

        restore_slot_state(self, state)

    def variables(self):
        raise NotImplementedError

    def column_refs(self):
        raise NotImplementedError

    def evaluate(self, assignment):
        raise NotImplementedError

    def evaluate_batch(self, arrays):
        raise NotImplementedError

    def negate(self):
        raise NotImplementedError

    def substitute(self, mapping):
        raise NotImplementedError

    def bind_columns(self, row):
        raise NotImplementedError

    @property
    def is_true(self):
        return False

    @property
    def is_false(self):
        return False


class _FalseCondition(Condition):
    """The unsatisfiable condition (singleton)."""

    __slots__ = ()

    def variables(self):
        return frozenset()

    def column_refs(self):
        return frozenset()

    def evaluate(self, assignment):
        return False

    def evaluate_batch(self, arrays):
        return np.asarray(False)

    def negate(self):
        return TRUE

    def substitute(self, mapping):
        return self

    def bind_columns(self, row):
        return self

    @property
    def is_false(self):
        return True

    def key(self):
        return ("false",)

    def __eq__(self, other):
        return isinstance(other, _FalseCondition)

    def __hash__(self):
        return hash(("false",))

    def __repr__(self):
        return "FALSE"


FALSE = _FalseCondition()


class Conjunction(Condition):
    """A conjunction of constraint atoms; the empty conjunction is TRUE.

    Atoms are stored deduplicated in first-seen order, so structurally
    equal conjunctions compare equal regardless of construction order
    differences caused by duplicates.
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms=()):
        seen = set()
        unique = []
        for atom in atoms:
            if not isinstance(atom, Atom):
                raise PIPError("Conjunction expects Atom instances, got %r" % (atom,))
            if atom.key() not in seen:
                seen.add(atom.key())
                unique.append(atom)
        object.__setattr__(self, "atoms", tuple(unique))

    def __setattr__(self, name, value):
        raise AttributeError("Conjunction is immutable")

    # -- structure ------------------------------------------------------------

    def key(self):
        return ("and",) + tuple(sorted(a.key() for a in self.atoms))

    def __eq__(self, other):
        if isinstance(other, _FalseCondition) or isinstance(other, Disjunction):
            return False
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        if not self.atoms:
            return "TRUE"
        return " AND ".join("(%r)" % (a,) for a in self.atoms)

    @property
    def is_true(self):
        return not self.atoms

    def variables(self):
        out = frozenset()
        for atom in self.atoms:
            out |= atom.variables()
        return out

    def column_refs(self):
        out = frozenset()
        for atom in self.atoms:
            out |= atom.column_refs()
        return out

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, assignment):
        return all(atom.evaluate(assignment) for atom in self.atoms)

    def evaluate_batch(self, arrays):
        if not self.atoms:
            return np.asarray(True)
        result = None
        for atom in self.atoms:
            mask = atom.evaluate_batch(arrays)
            result = mask if result is None else (result & mask)
        return result

    # -- transformations -------------------------------------------------------------

    def and_atom(self, atom):
        """Conjoin one atom, deciding it eagerly when deterministic."""
        decided = atom.decided()
        if decided is True:
            return self
        if decided is False:
            return FALSE
        return Conjunction(self.atoms + (atom,))

    def conjoin(self, other):
        """Conjoin with another condition (absorbing FALSE, distributing DNF)."""
        if isinstance(other, _FalseCondition):
            return FALSE
        if isinstance(other, Conjunction):
            result = self
            for atom in other.atoms:
                result = result.and_atom(atom)
                if result.is_false:
                    return FALSE
            return result
        if isinstance(other, Disjunction):
            return other.conjoin(self)
        raise PIPError("cannot conjoin with %r" % (other,))

    def negate(self):
        """De Morgan: NOT(a1 AND … AND an) = (¬a1) OR … OR (¬an)."""
        if not self.atoms:
            return FALSE
        disjuncts = [Conjunction((atom.negate(),)) for atom in self.atoms]
        if len(disjuncts) == 1:
            return disjuncts[0]
        return Disjunction(disjuncts)

    def substitute(self, mapping):
        return _decide_atoms(atom.substitute(mapping) for atom in self.atoms)

    def bind_columns(self, row):
        return _decide_atoms(atom.bind_columns(row) for atom in self.atoms)


def _decide_atoms(atoms):
    """Build a conjunction, deciding deterministic atoms eagerly."""
    result = TRUE
    for atom in atoms:
        result = result.and_atom(atom)
        if result.is_false:
            return FALSE
    return result


TRUE = Conjunction(())


class Disjunction(Condition):
    """DNF: a disjunction of conjunctions.

    Only :func:`distinct` and negation produce these; the relational
    operators keep rows conjunctive.  ``aconf`` integrates them directly.
    """

    __slots__ = ("disjuncts",)

    def __init__(self, disjuncts):
        unique = []
        seen = set()
        for disjunct in disjuncts:
            if isinstance(disjunct, _FalseCondition):
                continue
            if not isinstance(disjunct, Conjunction):
                raise PIPError("Disjunction expects Conjunction disjuncts")
            if disjunct.key() not in seen:
                seen.add(disjunct.key())
                unique.append(disjunct)
        if not unique:
            raise PIPError("empty Disjunction; use FALSE instead")
        object.__setattr__(self, "disjuncts", tuple(unique))

    def __setattr__(self, name, value):
        raise AttributeError("Disjunction is immutable")

    def key(self):
        return ("or",) + tuple(sorted(d.key() for d in self.disjuncts))

    def __eq__(self, other):
        if not isinstance(other, Disjunction):
            return False
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return " OR ".join("[%r]" % (d,) for d in self.disjuncts)

    @property
    def is_true(self):
        return any(d.is_true for d in self.disjuncts)

    def variables(self):
        out = frozenset()
        for disjunct in self.disjuncts:
            out |= disjunct.variables()
        return out

    def column_refs(self):
        out = frozenset()
        for disjunct in self.disjuncts:
            out |= disjunct.column_refs()
        return out

    def evaluate(self, assignment):
        return any(d.evaluate(assignment) for d in self.disjuncts)

    def evaluate_batch(self, arrays):
        result = None
        for disjunct in self.disjuncts:
            mask = disjunct.evaluate_batch(arrays)
            result = mask if result is None else (result | mask)
        return result

    def conjoin(self, other):
        """Distribute: (d1 OR d2) AND c = (d1 AND c) OR (d2 AND c)."""
        if isinstance(other, _FalseCondition):
            return FALSE
        if isinstance(other, Conjunction):
            new = [d.conjoin(other) for d in self.disjuncts]
            live = [d for d in new if not d.is_false]
            if not live:
                return FALSE
            if len(live) == 1:
                return live[0]
            return Disjunction(live)
        if isinstance(other, Disjunction):
            products = []
            for left, right in itertools.product(self.disjuncts, other.disjuncts):
                combined = left.conjoin(right)
                if not combined.is_false:
                    products.append(combined)
            if not products:
                return FALSE
            if len(products) == 1:
                return products[0]
            return Disjunction(products)
        raise PIPError("cannot conjoin with %r" % (other,))

    def negate(self):
        """De Morgan then distribute back to DNF (exponential; small inputs)."""
        negated = [d.negate() for d in self.disjuncts]
        result = negated[0]
        if isinstance(result, Conjunction):
            pass
        for term in negated[1:]:
            if isinstance(result, _FalseCondition):
                return FALSE
            result = result.conjoin(term) if isinstance(result, (Conjunction, Disjunction)) else FALSE
        return result

    def substitute(self, mapping):
        new = [d.substitute(mapping) for d in self.disjuncts]
        live = [d for d in new if not d.is_false]
        if any(d.is_true for d in live):
            return TRUE
        if not live:
            return FALSE
        if len(live) == 1:
            return live[0]
        return Disjunction(live)

    def bind_columns(self, row):
        new = [d.bind_columns(row) for d in self.disjuncts]
        live = [d for d in new if not d.is_false]
        if any(d.is_true for d in live):
            return TRUE
        if not live:
            return FALSE
        if len(live) == 1:
            return live[0]
        return Disjunction(live)


def conjunction_of(*atoms):
    """Build a conjunction from atoms, deciding deterministic ones."""
    return _decide_atoms(atoms)


def conjoin(first, second):
    """Conjoin any two conditions (dispatch helper)."""
    if isinstance(first, _FalseCondition) or isinstance(second, _FalseCondition):
        return FALSE
    return first.conjoin(second)


def disjoin(conditions):
    """OR a list of conditions into TRUE/FALSE/Conjunction/Disjunction."""
    disjuncts = []
    for condition in conditions:
        if isinstance(condition, _FalseCondition):
            continue
        if isinstance(condition, Conjunction):
            if condition.is_true:
                return TRUE
            disjuncts.append(condition)
        elif isinstance(condition, Disjunction):
            disjuncts.extend(condition.disjuncts)
        else:
            raise PIPError("cannot disjoin %r" % (condition,))
    if not disjuncts:
        return FALSE
    if len(disjuncts) == 1:
        return disjuncts[0]
    return Disjunction(disjuncts)
