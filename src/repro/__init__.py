"""repro — a full reproduction of PIP (Kennedy & Koch, ICDE 2010).

PIP is a probabilistic database system that represents uncertain data
symbolically as c-tables over random variables drawn from parametrised
(continuous or discrete) distribution classes, evaluates relational algebra
without touching probabilities, and defers all sampling/integration to
dedicated operators that see the complete expression and its constraint
context.

Public entry points
-------------------
:class:`~repro.core.database.PIPDatabase`
    The PIP engine: create tables and random variables, run SQL or fluent
    relational-algebra queries, compute expectations/confidences.
:class:`~repro.samplefirst.engine.SampleFirstDatabase`
    The MCDB-style "Sample-First" baseline the paper compares against.
:mod:`repro.workloads`
    TPC-H-like and iceberg-sighting generators plus the paper's queries.
"""

from repro.core.database import PIPDatabase
from repro.engine.prepared import PreparedStatement
from repro.engine.results import CellEstimate, ResultSet
from repro.session import Cursor, Session, Transaction
from repro.util.errors import SessionError, TransactionError
from repro.samplefirst.engine import SampleFirstDatabase
from repro.symbolic import (
    RandomVariable,
    Expression,
    Atom,
    Conjunction,
    Disjunction,
    TRUE,
    FALSE,
    var,
    col,
    const,
    func,
)
from repro.ctables.table import CTable
from repro.samplebank import SampleBank
from repro.distributions import (
    Distribution,
    DiscreteDistribution,
    register_distribution,
    get_distribution,
    registered_distributions,
)

__version__ = "1.0.0"

__all__ = [
    "PIPDatabase",
    "PreparedStatement",
    "ResultSet",
    "CellEstimate",
    "Session",
    "Cursor",
    "Transaction",
    "SessionError",
    "TransactionError",
    "SampleFirstDatabase",
    "RandomVariable",
    "Expression",
    "Atom",
    "Conjunction",
    "Disjunction",
    "TRUE",
    "FALSE",
    "var",
    "col",
    "const",
    "func",
    "CTable",
    "SampleBank",
    "Distribution",
    "DiscreteDistribution",
    "register_distribution",
    "get_distribution",
    "registered_distributions",
    "__version__",
]
