"""Distribution classes and registry (the paper's Section V-B framework).

Importing this package registers every built-in distribution class.  New
classes can be added at runtime with :func:`register_distribution`; only a
``Generate`` (here :meth:`Distribution.generate_batch`) is mandatory, while
``PDF``/``CDF``/``InverseCDF`` unlock progressively better sampling
strategies in the expectation operator.
"""

from repro.distributions.base import (
    Distribution,
    DiscreteDistribution,
    register_distribution,
    get_distribution,
    registered_distributions,
    rng_from_seed,
)
from repro.distributions.continuous import register_continuous
from repro.distributions.discrete import register_discrete
from repro.distributions.multivariate import (
    MultivariateDistribution,
    register_multivariate,
)

register_continuous()
register_discrete()
register_multivariate()

__all__ = [
    "Distribution",
    "DiscreteDistribution",
    "MultivariateDistribution",
    "register_distribution",
    "get_distribution",
    "registered_distributions",
    "rng_from_seed",
]
