"""Continuous distribution classes.

Every class provides ``generate_batch`` (the mandatory ``Generate``) plus
the optional ``pdf``/``cdf``/``inverse_cdf``/``mean``/``variance``/``support``
accelerators where closed forms exist.  scipy supplies the special
functions; sampling itself goes through numpy's Generator so streams stay
reproducible under our seed-derivation scheme.
"""

import math

import numpy as np
from scipy import stats as sps

from repro.distributions.base import Distribution, register_distribution
from repro.util.errors import DistributionError
from repro.util.intervals import Interval


def _require(cond, message):
    if not cond:
        raise DistributionError(message)


class NormalDistribution(Distribution):
    """Normal(mu, sigma) — sigma is the *standard deviation*.

    The paper writes ``Normal(mu, sigma^2)``; we accept the standard
    deviation, matching numpy/scipy conventions, and document it here to
    avoid silent misparameterisation.
    """

    name = "normal"

    def validate_params(self, params):
        _require(len(params) == 2, "normal expects (mu, sigma)")
        mu, sigma = float(params[0]), float(params[1])
        _require(sigma > 0, "normal sigma must be positive")
        return (mu, sigma)

    def generate_batch(self, params, rng, size):
        mu, sigma = params
        return rng.normal(mu, sigma, size)

    def pdf(self, params, x):
        mu, sigma = params
        return sps.norm.pdf(x, loc=mu, scale=sigma)

    def cdf(self, params, x):
        mu, sigma = params
        return sps.norm.cdf(x, loc=mu, scale=sigma)

    def inverse_cdf(self, params, u):
        mu, sigma = params
        return sps.norm.ppf(u, loc=mu, scale=sigma)

    def mean(self, params):
        return params[0]

    def variance(self, params):
        return params[1] ** 2

    def mean_in(self, params, interval):
        """Truncated-normal mean on a (possibly half-open) interval."""
        mu, sigma = params
        if interval.is_empty:
            return math.nan
        a = (interval.lo - mu) / sigma if math.isfinite(interval.lo) else -math.inf
        b = (interval.hi - mu) / sigma if math.isfinite(interval.hi) else math.inf
        phi_a = sps.norm.pdf(a) if math.isfinite(a) else 0.0
        phi_b = sps.norm.pdf(b) if math.isfinite(b) else 0.0
        cdf_a = sps.norm.cdf(a) if math.isfinite(a) else 0.0
        cdf_b = sps.norm.cdf(b) if math.isfinite(b) else 1.0
        mass = cdf_b - cdf_a
        if mass <= 0.0:
            return math.nan
        return mu + sigma * (phi_a - phi_b) / mass


class UniformDistribution(Distribution):
    """Uniform(lo, hi) over the closed interval [lo, hi]."""

    name = "uniform"

    def validate_params(self, params):
        _require(len(params) == 2, "uniform expects (lo, hi)")
        lo, hi = float(params[0]), float(params[1])
        _require(lo < hi, "uniform requires lo < hi")
        return (lo, hi)

    def generate_batch(self, params, rng, size):
        lo, hi = params
        return rng.uniform(lo, hi, size)

    def pdf(self, params, x):
        lo, hi = params
        x = np.asarray(x, dtype=float)
        return np.where((x >= lo) & (x <= hi), 1.0 / (hi - lo), 0.0)

    def cdf(self, params, x):
        lo, hi = params
        x = np.asarray(x, dtype=float)
        return np.clip((x - lo) / (hi - lo), 0.0, 1.0)

    def inverse_cdf(self, params, u):
        lo, hi = params
        u = np.asarray(u, dtype=float)
        return lo + u * (hi - lo)

    def mean(self, params):
        lo, hi = params
        return 0.5 * (lo + hi)

    def variance(self, params):
        lo, hi = params
        return (hi - lo) ** 2 / 12.0

    def mean_in(self, params, interval):
        """Conditioned uniform: midpoint of the clipped interval."""
        lo, hi = params
        clipped = interval.intersect(Interval(lo, hi))
        if clipped.is_empty:
            return math.nan
        return 0.5 * (clipped.lo + clipped.hi)

    def support(self, params):
        return Interval(params[0], params[1])


class ExponentialDistribution(Distribution):
    """Exponential(rate) with density rate * exp(-rate * x) on x >= 0."""

    name = "exponential"

    def validate_params(self, params):
        _require(len(params) == 1, "exponential expects (rate,)")
        rate = float(params[0])
        _require(rate > 0, "exponential rate must be positive")
        return (rate,)

    def generate_batch(self, params, rng, size):
        (rate,) = params
        return rng.exponential(1.0 / rate, size)

    def pdf(self, params, x):
        (rate,) = params
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, rate * np.exp(-rate * x), 0.0)

    def cdf(self, params, x):
        (rate,) = params
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, -np.expm1(-rate * x), 0.0)

    def inverse_cdf(self, params, u):
        (rate,) = params
        u = np.asarray(u, dtype=float)
        return -np.log1p(-u) / rate

    def mean(self, params):
        return 1.0 / params[0]

    def variance(self, params):
        return 1.0 / params[0] ** 2

    def mean_in(self, params, interval):
        """Truncated-exponential mean (memorylessness below, finite-window
        correction above)."""
        (rate,) = params
        clipped = interval.intersect(Interval.at_least(0.0))
        if clipped.is_empty:
            return math.nan
        a = clipped.lo
        if not math.isfinite(clipped.hi):
            return a + 1.0 / rate
        width = clipped.hi - a
        if width <= 0.0:
            return a
        # E[X | a <= X <= b] = a + 1/rate - width * e^{-rate*width} /
        #                                          (1 - e^{-rate*width})
        decay = math.exp(-rate * width)
        return a + 1.0 / rate - width * decay / (1.0 - decay)

    def support(self, params):
        return Interval.at_least(0.0)


class GammaDistribution(Distribution):
    """Gamma(shape, scale)."""

    name = "gamma"

    def validate_params(self, params):
        _require(len(params) == 2, "gamma expects (shape, scale)")
        shape, scale = float(params[0]), float(params[1])
        _require(shape > 0 and scale > 0, "gamma parameters must be positive")
        return (shape, scale)

    def generate_batch(self, params, rng, size):
        shape, scale = params
        return rng.gamma(shape, scale, size)

    def pdf(self, params, x):
        shape, scale = params
        return sps.gamma.pdf(x, a=shape, scale=scale)

    def cdf(self, params, x):
        shape, scale = params
        return sps.gamma.cdf(x, a=shape, scale=scale)

    def inverse_cdf(self, params, u):
        shape, scale = params
        return sps.gamma.ppf(u, a=shape, scale=scale)

    def mean(self, params):
        shape, scale = params
        return shape * scale

    def variance(self, params):
        shape, scale = params
        return shape * scale * scale

    def support(self, params):
        return Interval.at_least(0.0)


class BetaDistribution(Distribution):
    """Beta(alpha, beta) on [0, 1]."""

    name = "beta"

    def validate_params(self, params):
        _require(len(params) == 2, "beta expects (alpha, beta)")
        a, b = float(params[0]), float(params[1])
        _require(a > 0 and b > 0, "beta parameters must be positive")
        return (a, b)

    def generate_batch(self, params, rng, size):
        a, b = params
        return rng.beta(a, b, size)

    def pdf(self, params, x):
        a, b = params
        return sps.beta.pdf(x, a, b)

    def cdf(self, params, x):
        a, b = params
        return sps.beta.cdf(x, a, b)

    def inverse_cdf(self, params, u):
        a, b = params
        return sps.beta.ppf(u, a, b)

    def mean(self, params):
        a, b = params
        return a / (a + b)

    def variance(self, params):
        a, b = params
        return a * b / ((a + b) ** 2 * (a + b + 1.0))

    def support(self, params):
        return Interval(0.0, 1.0)


class LogNormalDistribution(Distribution):
    """LogNormal(mu, sigma): exp of a Normal(mu, sigma) variate."""

    name = "lognormal"

    def validate_params(self, params):
        _require(len(params) == 2, "lognormal expects (mu, sigma)")
        mu, sigma = float(params[0]), float(params[1])
        _require(sigma > 0, "lognormal sigma must be positive")
        return (mu, sigma)

    def generate_batch(self, params, rng, size):
        mu, sigma = params
        return rng.lognormal(mu, sigma, size)

    def pdf(self, params, x):
        mu, sigma = params
        return sps.lognorm.pdf(x, s=sigma, scale=math.exp(mu))

    def cdf(self, params, x):
        mu, sigma = params
        return sps.lognorm.cdf(x, s=sigma, scale=math.exp(mu))

    def inverse_cdf(self, params, u):
        mu, sigma = params
        return sps.lognorm.ppf(u, s=sigma, scale=math.exp(mu))

    def mean(self, params):
        mu, sigma = params
        return math.exp(mu + sigma * sigma / 2.0)

    def variance(self, params):
        mu, sigma = params
        s2 = sigma * sigma
        return (math.exp(s2) - 1.0) * math.exp(2.0 * mu + s2)

    def support(self, params):
        return Interval.at_least(0.0)


class LaplaceDistribution(Distribution):
    """Laplace(mu, b) — double-exponential around mu with scale b."""

    name = "laplace"

    def validate_params(self, params):
        _require(len(params) == 2, "laplace expects (mu, b)")
        mu, b = float(params[0]), float(params[1])
        _require(b > 0, "laplace scale must be positive")
        return (mu, b)

    def generate_batch(self, params, rng, size):
        mu, b = params
        return rng.laplace(mu, b, size)

    def pdf(self, params, x):
        mu, b = params
        x = np.asarray(x, dtype=float)
        return np.exp(-np.abs(x - mu) / b) / (2.0 * b)

    def cdf(self, params, x):
        mu, b = params
        x = np.asarray(x, dtype=float)
        return np.where(
            x < mu,
            0.5 * np.exp((x - mu) / b),
            1.0 - 0.5 * np.exp(-(x - mu) / b),
        )

    def inverse_cdf(self, params, u):
        mu, b = params
        u = np.asarray(u, dtype=float)
        return np.where(
            u < 0.5,
            mu + b * np.log(2.0 * u),
            mu - b * np.log(2.0 * (1.0 - u)),
        )

    def mean(self, params):
        return params[0]

    def variance(self, params):
        return 2.0 * params[1] ** 2


class TriangularDistribution(Distribution):
    """Triangular(lo, mode, hi)."""

    name = "triangular"

    def validate_params(self, params):
        _require(len(params) == 3, "triangular expects (lo, mode, hi)")
        lo, mode, hi = (float(p) for p in params)
        _require(lo <= mode <= hi and lo < hi, "need lo <= mode <= hi, lo < hi")
        return (lo, mode, hi)

    def generate_batch(self, params, rng, size):
        lo, mode, hi = params
        return rng.triangular(lo, mode, hi, size)

    def pdf(self, params, x):
        lo, mode, hi = params
        c = (mode - lo) / (hi - lo)
        return sps.triang.pdf(x, c, loc=lo, scale=hi - lo)

    def cdf(self, params, x):
        lo, mode, hi = params
        c = (mode - lo) / (hi - lo)
        return sps.triang.cdf(x, c, loc=lo, scale=hi - lo)

    def inverse_cdf(self, params, u):
        lo, mode, hi = params
        c = (mode - lo) / (hi - lo)
        return sps.triang.ppf(u, c, loc=lo, scale=hi - lo)

    def mean(self, params):
        lo, mode, hi = params
        return (lo + mode + hi) / 3.0

    def variance(self, params):
        lo, mode, hi = params
        return (
            lo * lo + mode * mode + hi * hi - lo * mode - lo * hi - mode * hi
        ) / 18.0

    def support(self, params):
        return Interval(params[0], params[2])


class WeibullDistribution(Distribution):
    """Weibull(shape, scale)."""

    name = "weibull"

    def validate_params(self, params):
        _require(len(params) == 2, "weibull expects (shape, scale)")
        shape, scale = float(params[0]), float(params[1])
        _require(shape > 0 and scale > 0, "weibull parameters must be positive")
        return (shape, scale)

    def generate_batch(self, params, rng, size):
        shape, scale = params
        return scale * rng.weibull(shape, size)

    def pdf(self, params, x):
        shape, scale = params
        return sps.weibull_min.pdf(x, shape, scale=scale)

    def cdf(self, params, x):
        shape, scale = params
        return sps.weibull_min.cdf(x, shape, scale=scale)

    def inverse_cdf(self, params, u):
        shape, scale = params
        return sps.weibull_min.ppf(u, shape, scale=scale)

    def mean(self, params):
        shape, scale = params
        return scale * math.gamma(1.0 + 1.0 / shape)

    def variance(self, params):
        shape, scale = params
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        return scale * scale * (g2 - g1 * g1)

    def support(self, params):
        return Interval.at_least(0.0)


class ParetoDistribution(Distribution):
    """Pareto(alpha, x_min): density alpha x_min^alpha / x^(alpha+1)."""

    name = "pareto"

    def validate_params(self, params):
        _require(len(params) == 2, "pareto expects (alpha, x_min)")
        alpha, x_min = float(params[0]), float(params[1])
        _require(alpha > 0 and x_min > 0, "pareto parameters must be positive")
        return (alpha, x_min)

    def generate_batch(self, params, rng, size):
        alpha, x_min = params
        return x_min * (1.0 + rng.pareto(alpha, size))

    def pdf(self, params, x):
        alpha, x_min = params
        return sps.pareto.pdf(x, alpha, scale=x_min)

    def cdf(self, params, x):
        alpha, x_min = params
        return sps.pareto.cdf(x, alpha, scale=x_min)

    def inverse_cdf(self, params, u):
        alpha, x_min = params
        return sps.pareto.ppf(u, alpha, scale=x_min)

    def mean(self, params):
        alpha, x_min = params
        if alpha <= 1.0:
            return math.inf
        return alpha * x_min / (alpha - 1.0)

    def variance(self, params):
        alpha, x_min = params
        if alpha <= 2.0:
            return math.inf
        return x_min * x_min * alpha / ((alpha - 1.0) ** 2 * (alpha - 2.0))

    def support(self, params):
        return Interval.at_least(params[1])


class StudentTDistribution(Distribution):
    """StudentT(df, loc, scale)."""

    name = "studentt"

    def validate_params(self, params):
        if len(params) == 1:
            params = (params[0], 0.0, 1.0)
        _require(len(params) == 3, "studentt expects (df[, loc, scale])")
        df, loc, scale = float(params[0]), float(params[1]), float(params[2])
        _require(df > 0 and scale > 0, "studentt needs df > 0 and scale > 0")
        return (df, loc, scale)

    def generate_batch(self, params, rng, size):
        df, loc, scale = params
        return loc + scale * rng.standard_t(df, size)

    def pdf(self, params, x):
        df, loc, scale = params
        return sps.t.pdf(x, df, loc=loc, scale=scale)

    def cdf(self, params, x):
        df, loc, scale = params
        return sps.t.cdf(x, df, loc=loc, scale=scale)

    def inverse_cdf(self, params, u):
        df, loc, scale = params
        return sps.t.ppf(u, df, loc=loc, scale=scale)

    def mean(self, params):
        df, loc, _scale = params
        if df <= 1.0:
            return math.nan
        return loc

    def variance(self, params):
        df, _loc, scale = params
        if df <= 2.0:
            return math.inf
        return scale * scale * df / (df - 2.0)


CONTINUOUS_CLASSES = (
    NormalDistribution,
    UniformDistribution,
    ExponentialDistribution,
    GammaDistribution,
    BetaDistribution,
    LogNormalDistribution,
    LaplaceDistribution,
    TriangularDistribution,
    WeibullDistribution,
    ParetoDistribution,
    StudentTDistribution,
)


def register_continuous():
    """Register every built-in continuous class (idempotent)."""
    for cls in CONTINUOUS_CLASSES:
        register_distribution(cls)
