"""Distribution class framework.

Section V-B of the paper: a PIP *distribution class* is a named bundle of
functions describing a parametrised probability distribution.  ``Generate``
is mandatory; ``PDF``, ``CDF`` and ``InverseCDF`` are optional accelerators —
when present, the sampling subsystem uses them for inverse-transform
sampling inside constraint bounds, exact probability computation, and
Metropolis proposals.

We model a distribution class as a subclass of :class:`Distribution`
registered (by name) in a process-global registry, mirroring the paper's
``CREATE VARIABLE(distribution, params)`` extension point.  User code can
register new classes at runtime; see ``examples/custom_distribution.py``.
"""

import math

import numpy as np

from repro.util.errors import DistributionError
from repro.util.intervals import Interval


class Distribution:
    """Base class for univariate distribution classes.

    Subclasses must set :attr:`name`, implement :meth:`validate_params` and
    :meth:`generate_batch`, and may implement any of the optional methods.
    All methods receive ``params`` as the tuple returned by
    :meth:`validate_params`.
    """

    #: Registry key; subclasses must override.
    name = None

    #: True for probability-mass distributions over a countable domain.
    is_discrete = False

    #: Number of scalar values a single draw produces (1 for univariate).
    dimension = 1

    # -- mandatory interface -------------------------------------------------

    def validate_params(self, params):
        """Normalise and validate a raw parameter sequence.

        Returns the canonical parameter tuple; raises
        :class:`DistributionError` for invalid parameters.
        """
        raise NotImplementedError

    def generate_batch(self, params, rng, size):
        """Draw ``size`` independent samples; returns a float ndarray.

        ``rng`` is a :class:`numpy.random.Generator`.  This is the paper's
        ``Generate`` function (vectorised)."""
        raise NotImplementedError

    # -- optional accelerators ----------------------------------------------

    def pdf(self, params, x):
        """Probability density (or mass) at ``x``; vectorised over ``x``."""
        raise NotImplementedError

    def cdf(self, params, x):
        """Cumulative distribution function at ``x``; vectorised."""
        raise NotImplementedError

    def inverse_cdf(self, params, u):
        """Quantile function at ``u`` in [0, 1]; vectorised."""
        raise NotImplementedError

    def mean(self, params):
        """Exact mean, when known in closed form."""
        raise NotImplementedError

    def variance(self, params):
        """Exact variance, when known in closed form."""
        raise NotImplementedError

    def mean_in(self, params, interval):
        """E[X | X ∈ interval], when known in closed form.

        One of the "further distribution-specific values" Section III-D
        says advanced methods can exploit to sidestep sampling entirely;
        the expectation operator's exact-truncated path uses it.
        """
        raise NotImplementedError

    def support(self, params):
        """Interval outside which the density/mass is zero."""
        return Interval()

    # -- capability discovery ------------------------------------------------

    def has(self, method_name):
        """Whether this class overrides the optional ``method_name``.

        The expectation operator keys its strategy choices off this: e.g.
        CDF-inversion sampling requires ``has("inverse_cdf")`` and exact
        probability computation requires ``has("cdf")``.
        """
        own = getattr(type(self), method_name, None)
        base = getattr(Distribution, method_name, None)
        return own is not None and own is not base

    @property
    def capabilities(self):
        """Frozen set of optional method names this class provides."""
        names = ("pdf", "cdf", "inverse_cdf", "mean", "variance", "mean_in")
        return frozenset(n for n in names if self.has(n))

    # -- conveniences ---------------------------------------------------------

    def generate(self, params, rng):
        """Draw a single sample (scalar)."""
        return float(self.generate_batch(params, rng, 1)[0])

    def probability_in(self, params, interval):
        """P[X in interval], exact via the CDF when available.

        This is the "at most two evaluations of the variable's CDF" path
        from Section III-A.  Raises :class:`DistributionError` when no CDF
        is defined.
        """
        if not self.has("cdf"):
            raise DistributionError(
                "distribution %r does not define a CDF" % (self.name,)
            )
        if interval.is_empty:
            return 0.0
        hi = self.cdf(params, interval.hi) if math.isfinite(interval.hi) else 1.0
        lo = self.cdf(params, interval.lo) if math.isfinite(interval.lo) else 0.0
        if self.is_discrete and math.isfinite(interval.lo):
            # Closed interval: include the mass at the lower endpoint.
            lo -= self.pmf_at(params, interval.lo) if self.has("pdf") else 0.0
        return max(0.0, min(1.0, float(hi) - float(lo)))

    def pmf_at(self, params, x):
        """Point mass at ``x`` for discrete distributions (0 off-domain)."""
        if not self.is_discrete or not self.has("pdf"):
            return 0.0
        if x != int(x):
            return 0.0
        return float(self.pdf(params, x))

    def __repr__(self):
        return "<distribution class %s>" % (self.name,)


class DiscreteDistribution(Distribution):
    """Base for probability-mass distributions.

    Adds :meth:`domain`, which enumerates ``(value, probability)`` pairs.
    The paper assumes discrete variables have finite domains; distributions
    with countably infinite support (Poisson, Geometric) enumerate a prefix
    covering all but ``tail_mass`` of the probability.
    """

    is_discrete = True

    #: Mass allowed to remain un-enumerated for infinite-support domains.
    tail_mass = 1e-12

    def domain(self, params):
        """Iterate ``(value, probability)`` pairs in increasing value order."""
        raise NotImplementedError

    def has(self, method_name):
        if method_name == "domain":
            own = getattr(type(self), "domain", None)
            return own is not None and own is not DiscreteDistribution.domain
        return super().has(method_name)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY = {}

#: Bumped on every (re)registration.  Forked worker pools snapshot the
#: registry at fork time; the parallel scheduler compares versions and
#: re-forks when a distribution was registered after the pool started.
_REGISTRY_VERSION = 0


def registry_version():
    """Monotonic counter of registry mutations (see ``_REGISTRY_VERSION``)."""
    return _REGISTRY_VERSION


def register_distribution(cls_or_instance, replace=False):
    """Register a distribution class under its :attr:`Distribution.name`.

    Accepts either the class (instantiated with no arguments) or a
    ready-made instance.  Registration is idempotent for the same object;
    re-registering a different object under an existing name requires
    ``replace=True``.
    """
    instance = cls_or_instance() if isinstance(cls_or_instance, type) else cls_or_instance
    if not isinstance(instance, Distribution):
        raise DistributionError("%r is not a Distribution" % (cls_or_instance,))
    if not instance.name:
        raise DistributionError("distribution class must define a name")
    key = instance.name.lower()
    existing = _REGISTRY.get(key)
    if existing is not None and type(existing) is not type(instance) and not replace:
        raise DistributionError(
            "distribution %r already registered; pass replace=True" % instance.name
        )
    _REGISTRY[key] = instance
    global _REGISTRY_VERSION
    _REGISTRY_VERSION += 1
    return instance


def get_distribution(name):
    """Look up a registered distribution class by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DistributionError(
            "unknown distribution %r (registered: %s)" % (name, known)
        ) from None


def registered_distributions():
    """Names of all registered distribution classes, sorted."""
    return sorted(_REGISTRY)


def rng_from_seed(seed):
    """A numpy Generator seeded deterministically from a 64-bit seed."""
    return np.random.default_rng(np.uint64(seed & ((1 << 64) - 1)))
