"""Multivariate distribution classes.

The paper's array notation ``[Y[n] => MVNormal(mu, sigma^2, N)]`` creates a
set of jointly distributed variables that share a variable identifier and
differ only in their subscript.  A multivariate class draws the whole joint
vector at once; the symbolic layer exposes component ``i`` as the variable
``(vid, i)``.

When a joint distribution has known marginals (as MVNormal does), the class
reports them so the sampler can still use CDF-based tricks on individual
components where exactness permits.
"""

import math

import numpy as np
from scipy import stats as sps

from repro.distributions.base import Distribution, register_distribution
from repro.util.errors import DistributionError


class MultivariateDistribution(Distribution):
    """Base for joint distributions over a vector of components."""

    def dimension_of(self, params):
        """Number of components a draw produces under these parameters."""
        raise NotImplementedError

    def generate_joint_batch(self, params, rng, size):
        """Draw ``size`` joint vectors; returns array of shape (size, dim)."""
        raise NotImplementedError

    def generate_batch(self, params, rng, size):
        """Component 0 stream, for API compatibility with univariate code."""
        return self.generate_joint_batch(params, rng, size)[:, 0]

    def marginal(self, params, subscript):
        """``(distribution_name, params)`` of component ``subscript``'s
        marginal, or ``None`` when no closed-form marginal is available."""
        return None

    def components_independent(self, params):
        """True when components are mutually independent under ``params``.

        Independence lets the constraint analyser split the components into
        separate sampling groups; dependent components must stay together.
        """
        return False


class MVNormalDistribution(MultivariateDistribution):
    """MVNormal(n, mu_1..mu_n, cov_11..cov_nn): joint normal vector.

    Parameters arrive flattened — first the dimension, then the mean
    vector, then the row-major covariance matrix — so they survive the
    string encoding used by the SQL front end.
    """

    name = "mvnormal"

    def validate_params(self, params):
        if not params:
            raise DistributionError("mvnormal expects (n, mu…, cov…)")
        n = int(params[0])
        if n < 1:
            raise DistributionError("mvnormal dimension must be >= 1")
        expected = 1 + n + n * n
        if len(params) != expected:
            raise DistributionError(
                "mvnormal with n=%d expects %d parameters, got %d"
                % (n, expected, len(params))
            )
        mu = tuple(float(v) for v in params[1 : 1 + n])
        cov = tuple(float(v) for v in params[1 + n :])
        matrix = np.array(cov, dtype=float).reshape(n, n)
        if not np.allclose(matrix, matrix.T, atol=1e-10):
            raise DistributionError("mvnormal covariance must be symmetric")
        eigvals = np.linalg.eigvalsh(matrix)
        if eigvals.min() < -1e-9:
            raise DistributionError("mvnormal covariance must be PSD")
        return (n,) + mu + cov

    def _unpack(self, params):
        n = int(params[0])
        mu = np.array(params[1 : 1 + n], dtype=float)
        cov = np.array(params[1 + n :], dtype=float).reshape(n, n)
        return n, mu, cov

    def dimension_of(self, params):
        return int(params[0])

    def generate_joint_batch(self, params, rng, size):
        n, mu, cov = self._unpack(params)
        return rng.multivariate_normal(mu, cov, size=size, method="svd")

    def marginal(self, params, subscript):
        n, mu, cov = self._unpack(params)
        if not 0 <= subscript < n:
            raise DistributionError(
                "mvnormal subscript %d out of range [0, %d)" % (subscript, n)
            )
        sigma = math.sqrt(max(cov[subscript, subscript], 0.0))
        if sigma == 0.0:
            return None
        return ("normal", (float(mu[subscript]), sigma))

    def components_independent(self, params):
        n, _mu, cov = self._unpack(params)
        off_diag = cov - np.diag(np.diag(cov))
        return bool(np.allclose(off_diag, 0.0, atol=1e-12))

    def pdf(self, params, x):
        """Joint density when handed a vector, component-0 marginal else."""
        _n, mu, cov = self._unpack(params)
        x = np.asarray(x, dtype=float)
        if x.ndim >= 1 and x.shape[-1] == len(mu) and len(mu) > 1:
            return sps.multivariate_normal.pdf(x, mean=mu, cov=cov)
        return sps.norm.pdf(x, loc=mu[0], scale=math.sqrt(cov[0, 0]))

    def mean(self, params):
        _n, mu, _cov = self._unpack(params)
        return float(mu[0])

    def variance(self, params):
        _n, _mu, cov = self._unpack(params)
        return float(cov[0, 0])


MULTIVARIATE_CLASSES = (MVNormalDistribution,)


def register_multivariate():
    """Register every built-in multivariate class (idempotent)."""
    for cls in MULTIVARIATE_CLASSES:
        register_distribution(cls)
