"""Discrete distribution classes.

Discrete variables in PIP can be *exploded*: a row containing a discrete
variable is replaced by one row per domain value, guarded by a ``X = v``
condition atom (Section III-C).  To support this, every class here exposes
:meth:`DiscreteDistribution.domain`, enumerating ``(value, probability)``
pairs.  Countably infinite distributions (Poisson, Geometric) enumerate a
prefix that covers all but :attr:`tail_mass` of the probability — the paper
assumes finite domains throughout, so this truncation only widens what we
can express.
"""

import math

import numpy as np
from scipy import stats as sps

from repro.distributions.base import DiscreteDistribution, register_distribution
from repro.util.errors import DistributionError
from repro.util.intervals import Interval


def _require(cond, message):
    if not cond:
        raise DistributionError(message)


class PoissonDistribution(DiscreteDistribution):
    """Poisson(lam)."""

    name = "poisson"

    def validate_params(self, params):
        _require(len(params) == 1, "poisson expects (lam,)")
        lam = float(params[0])
        _require(lam > 0, "poisson rate must be positive")
        return (lam,)

    def generate_batch(self, params, rng, size):
        (lam,) = params
        return rng.poisson(lam, size).astype(float)

    def pdf(self, params, x):
        (lam,) = params
        return sps.poisson.pmf(np.round(x), lam)

    def cdf(self, params, x):
        (lam,) = params
        return sps.poisson.cdf(np.floor(x), lam)

    def inverse_cdf(self, params, u):
        (lam,) = params
        return sps.poisson.ppf(u, lam).astype(float)

    def mean(self, params):
        return params[0]

    def variance(self, params):
        return params[0]

    def support(self, params):
        return Interval.at_least(0.0)

    def domain(self, params):
        (lam,) = params
        k = 0
        remaining = 1.0
        while remaining > self.tail_mass:
            p = float(sps.poisson.pmf(k, lam))
            yield (float(k), p)
            remaining -= p
            k += 1
            if k > lam + 40 * math.sqrt(lam) + 50:
                break


class BernoulliDistribution(DiscreteDistribution):
    """Bernoulli(p) over {0, 1}."""

    name = "bernoulli"

    def validate_params(self, params):
        _require(len(params) == 1, "bernoulli expects (p,)")
        p = float(params[0])
        _require(0.0 <= p <= 1.0, "bernoulli p must lie in [0, 1]")
        return (p,)

    def generate_batch(self, params, rng, size):
        (p,) = params
        return (rng.random(size) < p).astype(float)

    def pdf(self, params, x):
        (p,) = params
        x = np.asarray(x, dtype=float)
        return np.where(x == 1.0, p, np.where(x == 0.0, 1.0 - p, 0.0))

    def cdf(self, params, x):
        (p,) = params
        x = np.asarray(x, dtype=float)
        return np.where(x < 0.0, 0.0, np.where(x < 1.0, 1.0 - p, 1.0))

    def mean(self, params):
        return params[0]

    def variance(self, params):
        p = params[0]
        return p * (1.0 - p)

    def support(self, params):
        return Interval(0.0, 1.0)

    def domain(self, params):
        (p,) = params
        yield (0.0, 1.0 - p)
        yield (1.0, p)


class BinomialDistribution(DiscreteDistribution):
    """Binomial(n, p)."""

    name = "binomial"

    def validate_params(self, params):
        _require(len(params) == 2, "binomial expects (n, p)")
        n, p = int(params[0]), float(params[1])
        _require(n >= 0 and 0.0 <= p <= 1.0, "need n >= 0 and p in [0, 1]")
        return (n, p)

    def generate_batch(self, params, rng, size):
        n, p = params
        return rng.binomial(n, p, size).astype(float)

    def pdf(self, params, x):
        n, p = params
        return sps.binom.pmf(np.round(x), n, p)

    def cdf(self, params, x):
        n, p = params
        return sps.binom.cdf(np.floor(x), n, p)

    def mean(self, params):
        n, p = params
        return n * p

    def variance(self, params):
        n, p = params
        return n * p * (1.0 - p)

    def support(self, params):
        return Interval(0.0, float(params[0]))

    def domain(self, params):
        n, p = params
        for k in range(n + 1):
            yield (float(k), float(sps.binom.pmf(k, n, p)))


class GeometricDistribution(DiscreteDistribution):
    """Geometric(p): number of trials until first success, support {1, 2, …}."""

    name = "geometric"

    def validate_params(self, params):
        _require(len(params) == 1, "geometric expects (p,)")
        p = float(params[0])
        _require(0.0 < p <= 1.0, "geometric p must lie in (0, 1]")
        return (p,)

    def generate_batch(self, params, rng, size):
        (p,) = params
        return rng.geometric(p, size).astype(float)

    def pdf(self, params, x):
        (p,) = params
        return sps.geom.pmf(np.round(x), p)

    def cdf(self, params, x):
        (p,) = params
        return sps.geom.cdf(np.floor(x), p)

    def mean(self, params):
        return 1.0 / params[0]

    def variance(self, params):
        p = params[0]
        return (1.0 - p) / (p * p)

    def support(self, params):
        return Interval.at_least(1.0)

    def domain(self, params):
        (p,) = params
        k = 1
        remaining = 1.0
        while remaining > self.tail_mass:
            mass = p * (1.0 - p) ** (k - 1)
            yield (float(k), mass)
            remaining -= mass
            k += 1
            if k > 64 / max(p, 1e-9):
                break


class DiscreteUniformDistribution(DiscreteDistribution):
    """DiscreteUniform(lo, hi): integers lo..hi inclusive, equiprobable."""

    name = "discreteuniform"

    def validate_params(self, params):
        _require(len(params) == 2, "discreteuniform expects (lo, hi)")
        lo, hi = int(params[0]), int(params[1])
        _require(lo <= hi, "discreteuniform requires lo <= hi")
        return (lo, hi)

    def generate_batch(self, params, rng, size):
        lo, hi = params
        return rng.integers(lo, hi + 1, size).astype(float)

    def pdf(self, params, x):
        lo, hi = params
        x = np.asarray(x, dtype=float)
        n = hi - lo + 1
        in_domain = (x >= lo) & (x <= hi) & (x == np.round(x))
        return np.where(in_domain, 1.0 / n, 0.0)

    def cdf(self, params, x):
        lo, hi = params
        x = np.floor(np.asarray(x, dtype=float))
        n = hi - lo + 1
        return np.clip((x - lo + 1) / n, 0.0, 1.0)

    def mean(self, params):
        lo, hi = params
        return 0.5 * (lo + hi)

    def variance(self, params):
        lo, hi = params
        n = hi - lo + 1
        return (n * n - 1) / 12.0

    def support(self, params):
        return Interval(float(params[0]), float(params[1]))

    def domain(self, params):
        lo, hi = params
        n = hi - lo + 1
        for value in range(lo, hi + 1):
            yield (float(value), 1.0 / n)


class CategoricalDistribution(DiscreteDistribution):
    """Categorical(v1, p1, v2, p2, …): explicit finite value/probability list.

    This is the workhorse of the repair-key construction (Section V-A
    footnote: "for discrete distributions, PIP uses a repair-key operator").
    Parameters come flattened so they survive the string encoding the SQL
    front end uses.
    """

    name = "categorical"

    def validate_params(self, params):
        _require(len(params) >= 2 and len(params) % 2 == 0,
                 "categorical expects (v1, p1, v2, p2, …)")
        values = [float(v) for v in params[0::2]]
        probs = [float(p) for p in params[1::2]]
        _require(all(p >= 0 for p in probs), "probabilities must be >= 0")
        total = sum(probs)
        _require(total > 0, "probabilities must not all be zero")
        probs = [p / total for p in probs]
        _require(len(set(values)) == len(values), "values must be distinct")
        order = sorted(range(len(values)), key=lambda i: values[i])
        flat = []
        for i in order:
            flat.extend((values[i], probs[i]))
        return tuple(flat)

    def _pairs(self, params):
        return list(zip(params[0::2], params[1::2]))

    def generate_batch(self, params, rng, size):
        pairs = self._pairs(params)
        values = np.array([v for v, _ in pairs])
        probs = np.array([p for _, p in pairs])
        return rng.choice(values, size=size, p=probs)

    def pdf(self, params, x):
        pairs = self._pairs(params)
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        for value, prob in pairs:
            out = np.where(x == value, prob, out)
        return out

    def cdf(self, params, x):
        pairs = self._pairs(params)
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        for value, prob in pairs:
            out = out + np.where(x >= value, prob, 0.0)
        return out

    def mean(self, params):
        return sum(v * p for v, p in self._pairs(params))

    def variance(self, params):
        mu = self.mean(params)
        return sum(p * (v - mu) ** 2 for v, p in self._pairs(params))

    def support(self, params):
        pairs = self._pairs(params)
        return Interval(pairs[0][0], pairs[-1][0])

    def domain(self, params):
        for value, prob in self._pairs(params):
            yield (value, prob)


class ZipfDistribution(DiscreteDistribution):
    """Zipf(s, n): ranks 1..n with probability proportional to 1/rank^s."""

    name = "zipf"

    def validate_params(self, params):
        _require(len(params) == 2, "zipf expects (s, n)")
        s, n = float(params[0]), int(params[1])
        _require(s > 0 and n >= 1, "zipf needs s > 0 and n >= 1")
        return (s, n)

    def _probs(self, params):
        s, n = params
        weights = np.arange(1, n + 1, dtype=float) ** (-s)
        return weights / weights.sum()

    def generate_batch(self, params, rng, size):
        _s, n = params
        probs = self._probs(params)
        return rng.choice(np.arange(1, n + 1, dtype=float), size=size, p=probs)

    def pdf(self, params, x):
        _s, n = params
        probs = self._probs(params)
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        idx = np.round(x).astype(int)
        ok = (x == np.round(x)) & (idx >= 1) & (idx <= n)
        out[ok] = probs[idx[ok] - 1]
        return out

    def cdf(self, params, x):
        _s, n = params
        cum = np.concatenate([[0.0], np.cumsum(self._probs(params))])
        x = np.floor(np.asarray(x, dtype=float)).astype(int)
        x = np.clip(x, 0, n)
        return cum[x]

    def mean(self, params):
        _s, n = params
        probs = self._probs(params)
        return float(np.dot(np.arange(1, n + 1), probs))

    def variance(self, params):
        _s, n = params
        probs = self._probs(params)
        ranks = np.arange(1, n + 1, dtype=float)
        mu = float(np.dot(ranks, probs))
        return float(np.dot((ranks - mu) ** 2, probs))

    def support(self, params):
        return Interval(1.0, float(params[1]))

    def domain(self, params):
        _s, n = params
        probs = self._probs(params)
        for rank in range(1, n + 1):
            yield (float(rank), float(probs[rank - 1]))


DISCRETE_CLASSES = (
    PoissonDistribution,
    BernoulliDistribution,
    BinomialDistribution,
    GeometricDistribution,
    DiscreteUniformDistribution,
    CategoricalDistribution,
    ZipfDistribution,
)


def register_discrete():
    """Register every built-in discrete class (idempotent)."""
    for cls in DISCRETE_CLASSES:
        register_distribution(cls)
