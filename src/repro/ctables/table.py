"""Conditional tables (c-tables).

A c-table is a multiset of ``(tuple, condition)`` rows (Section II-A).
Data cells hold domain values or symbolic equations; the condition column
holds a boolean condition over random variables (almost always a
conjunction — see :mod:`repro.symbolic.conditions`).

The table itself is deliberately dumb: all relational-algebra behaviour
lives in :mod:`repro.ctables.algebra`, and all probability machinery in
:mod:`repro.sampling`.
"""

from repro.ctables.schema import Schema
from repro.symbolic.conditions import Condition, TRUE
from repro.symbolic.expression import Expression, as_expression
from repro.util.errors import SchemaError
from repro.util.text import render_table


class CTRow:
    """One c-table row: a value tuple plus its local condition."""

    __slots__ = ("values", "condition")

    def __init__(self, values, condition=TRUE):
        if not isinstance(condition, Condition):
            raise SchemaError("row condition must be a Condition, got %r" % (condition,))
        self.values = tuple(values)
        self.condition = condition

    def value_key(self):
        """Hashable identity of the data tuple (conditions excluded).

        Expressions contribute their structural key; used by ``distinct``."""
        return tuple(
            v.key() if isinstance(v, Expression) else ("lit", v) for v in self.values
        )

    def variables(self):
        """All random variables in cells or the condition."""
        out = self.condition.variables()
        for value in self.values:
            if isinstance(value, Expression):
                out |= value.variables()
        return out

    def __iter__(self):
        return iter(self.values)

    def __len__(self):
        return len(self.values)

    def __getitem__(self, i):
        return self.values[i]

    def __repr__(self):
        return "CTRow(%r, %r)" % (self.values, self.condition)


class CTable:
    """A multiset c-table over a fixed schema.

    ``watchers`` is a list of callables invoked as ``watcher(table, row)``
    after every :meth:`add_row` append.  The database registers one per
    stored table so mutations can invalidate dependent sample-bank entries;
    derived tables (copies, algebra results) start with no watchers.
    """

    __slots__ = ("schema", "rows", "name", "watchers", "version", "colstore")

    def __init__(self, schema, rows=(), name=None):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self.name = name
        self.watchers = []
        # Mutation counter + cached columnar view (repro.columnar).  The
        # version lets ColumnStore validate itself even when a mutation
        # replaces cells without changing row count or list identity.
        self.version = 0
        self.colstore = None
        self.rows = []
        for row in rows:
            if isinstance(row, CTRow):
                self._check_arity(row.values)
                self.rows.append(row)
            else:
                self.add_row(row)

    def _check_arity(self, values):
        if len(values) != len(self.schema):
            raise SchemaError(
                "row arity %d does not match schema arity %d"
                % (len(values), len(self.schema))
            )

    def add_row(self, values, condition=TRUE):
        """Append a row; values are validated against declared column types."""
        self._check_arity(values)
        coerced = []
        for column, value in zip(self.schema.columns, values):
            if isinstance(value, Expression) or not hasattr(value, "key"):
                pass
            if not column.accepts(value):
                raise SchemaError(
                    "value %r not valid for column %s:%s"
                    % (value, column.name, column.ctype)
                )
            coerced.append(value)
        if condition.is_false:
            return  # inconsistent rows may be freely removed (Section III-C)
        row = CTRow(tuple(coerced), condition)
        self.rows.append(row)
        self.version += 1
        for watcher in self.watchers:
            watcher(self, row)

    def update_rows(self, updates):
        """Replace row values in place: ``updates`` is a sequence of
        ``(row_index, new_values)`` pairs.

        Every replacement is validated (arity + column types) *before*
        any row changes, so a bad assignment leaves the table untouched.
        Conditions are preserved — UPDATE rewrites data cells, never a
        row's membership.  Watchers fire once with the old row and once
        with the new one (both rows' random variables may anchor cached
        sample-bank entries), mirroring :meth:`add_row`/:meth:`remove_rows`
        so the database's invalidation and write-ahead journaling see
        updates too.  Returns the number of rows replaced.
        """
        staged = []
        for index, values in updates:
            old = self.rows[index]
            values = tuple(values)
            self._check_arity(values)
            for column, value in zip(self.schema.columns, values):
                if not column.accepts(value):
                    raise SchemaError(
                        "value %r not valid for column %s:%s"
                        % (value, column.name, column.ctype)
                    )
            staged.append((index, old, CTRow(values, old.condition)))
        for index, _old, new in staged:
            self.rows[index] = new
        if staged:
            self.version += 1
        for _index, old, new in staged:
            for watcher in self.watchers:
                watcher(self, old)
                watcher(self, new)
        return len(staged)

    def remove_rows(self, rows):
        """Remove specific row objects (matched by identity, not value —
        a bag may hold equal rows and only the chosen copies must go).

        Watchers fire once per removed row, exactly as :meth:`add_row`
        fires per appended row, so the database's sample-bank
        invalidation and write-ahead journaling see deletes too.
        Returns how many rows were removed.
        """
        doomed = {id(row) for row in rows}
        removed = [row for row in self.rows if id(row) in doomed]
        if not removed:
            return 0
        self.rows = [row for row in self.rows if id(row) not in doomed]
        self.version += 1
        for row in removed:
            for watcher in self.watchers:
                watcher(self, row)
        return len(removed)

    # -- accessors -------------------------------------------------------------

    @property
    def columns(self):
        return self.schema.names

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_values(self, name):
        """All values in column ``name`` (one per row, conditions ignored)."""
        idx = self.schema.index_of(name)
        return [row.values[idx] for row in self.rows]

    def cell(self, row_index, column_name):
        return self.rows[row_index].values[self.schema.index_of(column_name)]

    def row_mapping(self, row):
        """Dict of column name -> cell value for expression binding."""
        return dict(zip(self.schema.names, row.values))

    def variables(self):
        """All random variables appearing anywhere in the table."""
        out = frozenset()
        for row in self.rows:
            out |= row.variables()
        return out

    @property
    def is_deterministic(self):
        """No symbolic cells and every condition is TRUE."""
        return all(row.condition.is_true and not row.variables() for row in self.rows)

    def copy(self, name=None):
        """Shallow copy (rows are immutable, so sharing them is safe)."""
        return CTable(self.schema, list(self.rows), name=name or self.name)

    def with_rows(self, rows, name=None):
        """New table over the same schema with different rows."""
        table = CTable(self.schema, (), name=name or self.name)
        table.rows = list(rows)
        return table

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self):
        # The cached columnar view is derived data (and heavy); rebuild
        # it lazily on the other side instead of shipping it.
        return (self.schema, self.rows, self.name, self.watchers, self.version)

    def __setstate__(self, state):
        self.schema, self.rows, self.name, self.watchers, self.version = state
        self.colstore = None

    # -- display ------------------------------------------------------------------

    def pretty(self, max_rows=25):
        """Human-readable rendering including the condition column."""
        headers = list(self.schema.names) + ["condition"]
        shown = self.rows[:max_rows]
        body = [list(map(_show, row.values)) + [repr(row.condition)] for row in shown]
        if len(self.rows) > max_rows:
            body.append(["…"] * len(headers))
        title = "%s (%d rows)" % (self.name or "ctable", len(self.rows))
        return render_table(headers, body, title=title)

    def __repr__(self):
        return "<CTable %s: %d cols, %d rows>" % (
            self.name or "?",
            len(self.schema),
            len(self.rows),
        )


def _show(value):
    if isinstance(value, Expression):
        return repr(value)
    return value


def table_from_rows(column_names, plain_rows, name=None):
    """Build a fully deterministic c-table from plain tuples."""
    table = CTable(Schema(list(column_names)), name=name)
    for values in plain_rows:
        table.add_row([as_expression(v).const_value() if isinstance(v, Expression) else v for v in values])
    return table
