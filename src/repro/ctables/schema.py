"""Table schemas.

A schema is an ordered list of named columns.  Column *types* are advisory:
the engine is dynamically typed like the paper's Postgres embedding, but
declared types drive validation on insert and pretty-printing.  The special
type ``EXPR`` marks columns that may hold symbolic equations (the paper's
``VarExp`` datatype, Figure 4).
"""

from repro.symbolic.expression import Expression, is_numeric
from repro.util.errors import SchemaError

#: Recognised column types.
INT = "int"
FLOAT = "float"
STR = "str"
BOOL = "bool"
EXPR = "expr"
ANY = "any"

_TYPES = (INT, FLOAT, STR, BOOL, EXPR, ANY)


class Column:
    """One named, typed column."""

    __slots__ = ("name", "ctype")

    def __init__(self, name, ctype=ANY):
        if not name or not isinstance(name, str):
            raise SchemaError("column name must be a non-empty string")
        if ctype not in _TYPES:
            raise SchemaError(
                "unknown column type %r (one of %s)" % (ctype, ", ".join(_TYPES))
            )
        self.name = name
        self.ctype = ctype

    def accepts(self, value):
        """Whether ``value`` is legal for this column."""
        if value is None:
            return True
        if isinstance(value, Expression):
            return self.ctype in (EXPR, ANY, FLOAT, INT)
        if self.ctype == ANY:
            return True
        if self.ctype == INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self.ctype == FLOAT:
            return is_numeric(value)
        if self.ctype == STR:
            return isinstance(value, str)
        if self.ctype == BOOL:
            return isinstance(value, bool)
        if self.ctype == EXPR:
            return is_numeric(value)
        return False

    def __eq__(self, other):
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self.ctype == other.ctype

    def __hash__(self):
        return hash((self.name, self.ctype))

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.ctype)


class Schema:
    """An ordered collection of columns with name-based lookup.

    Column names must be unique.  Qualified lookups (``alias.col``) fall
    back to suffix matching so expressions written against aliased scans
    still bind after the planner strips qualifiers.
    """

    __slots__ = ("columns", "_index")

    def __init__(self, columns):
        cols = []
        for item in columns:
            if isinstance(item, Column):
                cols.append(item)
            elif isinstance(item, str):
                cols.append(Column(item))
            elif isinstance(item, tuple) and len(item) == 2:
                cols.append(Column(item[0], item[1]))
            else:
                raise SchemaError("bad column spec %r" % (item,))
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError("duplicate column names: %s" % ", ".join(duplicates))
        self.columns = tuple(cols)
        self._index = {c.name: i for i, c in enumerate(cols)}

    @property
    def names(self):
        return tuple(c.name for c in self.columns)

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name):
        return name in self._index

    def index_of(self, name):
        """Position of column ``name``; supports qualified-suffix fallback."""
        if name in self._index:
            return self._index[name]
        if "." in name:
            suffix = name.split(".")[-1]
            if suffix in self._index:
                return self._index[suffix]
        matches = [i for n, i in self._index.items() if n.split(".")[-1] == name]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SchemaError("ambiguous column reference %r" % (name,))
        raise SchemaError(
            "no column %r in schema (%s)" % (name, ", ".join(self.names))
        )

    def column(self, name):
        return self.columns[self.index_of(name)]

    def rename(self, mapping):
        """New schema with columns renamed per ``mapping`` (old -> new)."""
        return Schema(
            [Column(mapping.get(c.name, c.name), c.ctype) for c in self.columns]
        )

    def prefixed(self, alias):
        """New schema with every column qualified as ``alias.name``."""
        return Schema(
            [Column("%s.%s" % (alias, c.name.split(".")[-1]), c.ctype) for c in self.columns]
        )

    def concat(self, other):
        """Schema of a product; raises on name collision."""
        return Schema(list(self.columns) + list(other.columns))

    def project(self, names):
        """Schema restricted to ``names`` (in the given order)."""
        return Schema([self.columns[self.index_of(n)] for n in names])

    def __eq__(self, other):
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __hash__(self):
        return hash(self.columns)

    def __repr__(self):
        return "Schema(%s)" % (", ".join("%s:%s" % (c.name, c.ctype) for c in self.columns))
