"""Possible-world semantics.

C-table semantics are defined in terms of possible worlds (Section II-A):
a world is a variable assignment θ, and relation R in that world contains
θ(t) for every c-table row (t, φ) with θ(φ) true.

:func:`instantiate` realises one world — the ground truth against which the
property tests check that relational algebra on c-tables commutes with
instantiation.  :func:`enumerate_discrete_worlds` exhaustively enumerates
assignments of the *discrete* variables (continuous ones must be handled
analytically or by sampling), yielding ``(assignment, probability)`` pairs
for exact expectation computation in tests and small workloads.
"""

import itertools

from repro.ctables.table import CTable, CTRow
from repro.symbolic.expression import Expression
from repro.util.errors import PIPError


def instantiate(table, assignment):
    """Apply a variable assignment θ to a c-table, yielding a plain table.

    Rows whose condition is false under θ vanish; symbolic cells are
    evaluated to domain values.  ``assignment`` maps variable keys
    ``(vid, subscript)`` to values.
    """
    out = CTable(table.schema, name=table.name)
    for row in table.rows:
        if not row.condition.evaluate(assignment):
            continue
        values = []
        for value in row.values:
            if isinstance(value, Expression):
                values.append(value.evaluate(assignment))
            else:
                values.append(value)
        out.rows.append(CTRow(tuple(values)))
    return out


def enumerate_discrete_worlds(variables):
    """Yield ``(assignment, probability)`` over all joint valuations.

    ``variables`` is an iterable of discrete :class:`RandomVariable`; they
    are assumed independent (the c-table encodes dependencies through
    conditions, not through the base distribution — Section II-C).  Raises
    when handed a continuous variable.
    """
    variables = list(variables)
    domains = []
    for variable in variables:
        if not variable.is_discrete:
            raise PIPError(
                "cannot enumerate continuous variable %r" % (variable,)
            )
        dist = variable.distribution
        params = dist.validate_params(variable.params)
        domains.append(list(dist.domain(params)))
    for combo in itertools.product(*domains):
        probability = 1.0
        assignment = {}
        for variable, (value, mass) in zip(variables, combo):
            probability *= mass
            assignment[variable.key] = value
        if probability > 0.0:
            yield assignment, probability


def exact_row_probability(condition):
    """Exact P[condition] for conditions over discrete variables only.

    Used as ground truth in tests; enumerates the joint domain.
    """
    variables = sorted(condition.variables(), key=lambda v: v.key)
    if not variables:
        return 1.0 if condition.evaluate({}) else 0.0
    total = 0.0
    for assignment, probability in enumerate_discrete_worlds(variables):
        if condition.evaluate(assignment):
            total += probability
    return total


def exact_expected_sum(table, column):
    """Exact expected sum of a column over discrete-only uncertainty.

    ``E[Σ h(t)] = Σ_{(t,φ)} E[χφ · h(t)]`` computed by full enumeration.
    """
    idx = table.schema.index_of(column)
    variables = sorted(table.variables(), key=lambda v: v.key)
    if not variables:
        return float(
            sum(row.values[idx] for row in table.rows if row.condition.evaluate({}))
        )
    total = 0.0
    for assignment, probability in enumerate_discrete_worlds(variables):
        world_sum = 0.0
        for row in table.rows:
            if not row.condition.evaluate(assignment):
                continue
            value = row.values[idx]
            if isinstance(value, Expression):
                value = value.evaluate(assignment)
            world_sum += value
        total += probability * world_sum
    return total
