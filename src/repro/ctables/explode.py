"""Discrete-variable explosion and the repair-key operator.

Section III-C: "rather than using abstract representations, every row
containing discrete variables may be exploded into one row for every
possible valuation.  Condition atoms matching each variable to its
valuation are used to ensure mutual exclusion of each row."  After
explosion, discrete variables behave like constants for consistency
checking, and deterministic query optimisation filters them early.

``repair_key`` is the MayBMS-style constructor the paper's footnote cites
for building discrete probabilistic tables: each group of rows sharing a
key becomes a categorical choice of exactly one alternative.
"""

import itertools

from repro.ctables.table import CTable, CTRow
from repro.symbolic.atoms import Atom
from repro.symbolic.conditions import conjoin, conjunction_of
from repro.symbolic.expression import Constant, Expression, VarTerm
from repro.util.errors import PIPError


def _discrete_variables_of_row(row):
    discrete = sorted(
        (v for v in row.variables() if v.is_discrete and not v.is_multivariate),
        key=lambda v: v.key,
    )
    return discrete


def explode_discrete(table, max_rows=100000):
    """Explode every discrete variable occurrence into guarded rows.

    Each output row fixes its discrete variables to concrete domain values
    via ``X = v`` atoms; symbolic cells mentioning those variables are
    partially evaluated.  Continuous variables are untouched.

    ``max_rows`` guards against combinatorial explosion; exceeding it
    raises rather than silently truncating.
    """
    out = CTable(table.schema, name=table.name)
    produced = 0
    for row in table.rows:
        discrete = _discrete_variables_of_row(row)
        if not discrete:
            out.rows.append(row)
            produced += 1
            continue
        domains = []
        for variable in discrete:
            dist = variable.distribution
            params = dist.validate_params(variable.params)
            domains.append([value for value, _mass in dist.domain(params)])
        for combo in itertools.product(*domains):
            produced += 1
            if produced > max_rows:
                raise PIPError(
                    "discrete explosion exceeds %d rows; raise max_rows" % max_rows
                )
            mapping = {
                variable.key: value for variable, value in zip(discrete, combo)
            }
            guard_atoms = [
                Atom(VarTerm(variable), "=", Constant(value))
                for variable, value in zip(discrete, combo)
            ]
            new_condition = conjoin(
                row.condition.substitute(mapping), conjunction_of(*guard_atoms)
            )
            if new_condition.is_false:
                continue
            values = []
            for value in row.values:
                if isinstance(value, Expression):
                    substituted = value.substitute(mapping)
                    if substituted.is_constant:
                        values.append(substituted.const_value())
                    else:
                        values.append(substituted)
                else:
                    values.append(value)
            out.rows.append(CTRow(tuple(values), new_condition))
    return out


def repair_key(table, key_columns, probability_column, factory):
    """MayBMS-style repair-key: per key group, choose one row at random.

    For each group of rows agreeing on ``key_columns``, a fresh categorical
    variable is created (via ``factory``, a
    :class:`~repro.symbolic.variables.VariableFactory`) whose domain indexes
    the alternatives with probabilities proportional to
    ``probability_column``.  Each alternative row is guarded by ``X = i``;
    the probability column is dropped from the output.

    Returns the new c-table.
    """
    prob_idx = table.schema.index_of(probability_column)
    key_indices = [table.schema.index_of(c) for c in key_columns]
    out_columns = [
        column
        for i, column in enumerate(table.schema.columns)
        if i != prob_idx
    ]
    groups = {}
    order = []
    for row in table.rows:
        key = tuple(row.values[i] for i in key_indices)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    out = CTable(out_columns, name=table.name)
    for key in order:
        rows = groups[key]
        weights = []
        for row in rows:
            weight = row.values[prob_idx]
            if isinstance(weight, Expression) or not isinstance(weight, (int, float)):
                raise PIPError("repair-key weights must be deterministic numbers")
            if weight < 0:
                raise PIPError("repair-key weights must be non-negative")
            weights.append(float(weight))
        total = sum(weights)
        if total <= 0:
            continue
        params = []
        for i, weight in enumerate(weights):
            params.extend((float(i), weight / total))
        chooser = factory.create("categorical", params)
        for i, row in enumerate(rows):
            guard = Atom(VarTerm(chooser), "=", Constant(float(i)))
            condition = conjoin(row.condition, conjunction_of(guard))
            if condition.is_false:
                continue
            values = tuple(
                value for j, value in enumerate(row.values) if j != prob_idx
            )
            out.rows.append(CTRow(values, condition))
    return out
