"""C-tables: the symbolic relational substrate (Sections II-A/II-B)."""

from repro.ctables.schema import Schema, Column, INT, FLOAT, STR, BOOL, EXPR, ANY
from repro.ctables.table import CTable, CTRow, table_from_rows
from repro.ctables.algebra import (
    select,
    select_fn,
    project,
    product,
    join,
    union,
    distinct,
    difference,
    rename,
    prefix,
    order_by,
    partition,
    limit,
)
from repro.ctables.worlds import (
    instantiate,
    enumerate_discrete_worlds,
    exact_row_probability,
    exact_expected_sum,
)
from repro.ctables.explode import explode_discrete, repair_key

__all__ = [
    "Schema",
    "Column",
    "INT",
    "FLOAT",
    "STR",
    "BOOL",
    "EXPR",
    "ANY",
    "CTable",
    "CTRow",
    "table_from_rows",
    "select",
    "select_fn",
    "project",
    "product",
    "join",
    "union",
    "distinct",
    "difference",
    "rename",
    "prefix",
    "order_by",
    "partition",
    "limit",
    "instantiate",
    "enumerate_discrete_worlds",
    "exact_row_probability",
    "exact_expected_sum",
    "explode_discrete",
    "repair_key",
]
