"""Relational algebra on c-tables (Figure 1 of the paper).

Each operator is a pure function from c-tables to a new c-table.  The
probabilistic part of the data is never touched: selection predicates that
involve random variables become condition atoms on the surviving rows, and
rows whose condition is decidably FALSE are dropped (the paper's
"inconsistent tuples may be freely removed").

Predicates are written against *column names* using
:class:`~repro.symbolic.expression.ColumnTerm` leaves; each operator binds
them to the actual cell values row by row.  A bound atom whose operands are
all constants is decided on the spot; otherwise it lands in the row's local
condition.
"""

from repro.ctables.schema import Schema
from repro.ctables.table import CTable, CTRow
from repro.symbolic.atoms import Atom
from repro.symbolic.conditions import (
    Condition,
    Conjunction,
    TRUE,
    conjoin,
    conjunction_of,
    disjoin,
)
from repro.symbolic.expression import Expression, as_expression
from repro.util.errors import PIPError, SchemaError


def _as_condition(predicate):
    """Coerce a predicate (Atom / Condition / iterable of atoms) to a Condition."""
    if isinstance(predicate, Condition):
        return predicate
    if isinstance(predicate, Atom):
        return conjunction_of(predicate)
    if isinstance(predicate, (list, tuple)):
        return conjunction_of(*predicate)
    raise PIPError("cannot interpret %r as a selection predicate" % (predicate,))


def select(table, predicate):
    """σ_ψ: conjoin the (column-bound) predicate onto each row's condition.

    ``C_{σψ(R)} = {| (r, φ ∧ ψ[r]) | (r, φ) ∈ C_R |}`` — with rows whose
    combined condition is decidably false removed.
    """
    condition = _as_condition(predicate)
    out_rows = []
    for row in table.rows:
        bound = condition.bind_columns(table.row_mapping(row))
        combined = conjoin(row.condition, bound)
        if not combined.is_false:
            out_rows.append(CTRow(row.values, combined))
    return table.with_rows(out_rows)


def select_fn(table, fn):
    """Deterministic selection by a Python callable over the row mapping.

    Only usable when the callable needs no random variables; used by
    workload code for plain filters.
    """
    out_rows = [row for row in table.rows if fn(table.row_mapping(row))]
    return table.with_rows(out_rows)


def project(table, items):
    """π: keep/compute columns.  ``items`` is a list of either

    * a column name (pass-through), or
    * a ``(new_name, expression)`` pair whose expression may reference
      columns; the expression is bound per row and may be symbolic.
    """
    out_columns = []
    builders = []
    for item in items:
        if isinstance(item, str):
            idx = table.schema.index_of(item)
            out_columns.append(table.schema.columns[idx])
            builders.append(("col", idx))
        else:
            name, expr = item
            expr = as_expression(expr)
            out_columns.append((name, "any"))
            builders.append(("expr", expr))
    schema = Schema(out_columns)
    out = CTable(schema, name=table.name)
    for row in table.rows:
        mapping = table.row_mapping(row)
        values = []
        for kind, payload in builders:
            if kind == "col":
                values.append(row.values[payload])
            else:
                bound = payload.bind_columns(mapping)
                if bound.is_constant:
                    values.append(bound.const_value())
                else:
                    values.append(bound)
        out.rows.append(CTRow(tuple(values), row.condition))
    return out


def product(left, right):
    """×: concatenate tuples, conjoin conditions; drop decided-false rows."""
    schema = left.schema.concat(right.schema)
    out = CTable(schema)
    for lrow in left.rows:
        for rrow in right.rows:
            combined = conjoin(lrow.condition, rrow.condition)
            if not combined.is_false:
                out.rows.append(CTRow(lrow.values + rrow.values, combined))
    return out


def join(left, right, predicate):
    """θ-join: product followed by selection."""
    return select(product(left, right), predicate)


def union(left, right):
    """⊎: bag union.  Arity must match; the left schema wins."""
    if len(left.schema) != len(right.schema):
        raise SchemaError(
            "union arity mismatch: %d vs %d" % (len(left.schema), len(right.schema))
        )
    out = left.with_rows(list(left.rows) + list(right.rows))
    return out


def distinct(table):
    """Duplicate elimination: group equal tuples, OR their conditions.

    ``C_distinct(R) = {| (r, ∨{φ}) |}``.  The resulting conditions may be
    DNF disjunctions; downstream operators and ``aconf`` handle them.
    """
    order = []
    by_key = {}
    for row in table.rows:
        key = row.value_key()
        if key not in by_key:
            by_key[key] = (row.values, [])
            order.append(key)
        by_key[key][1].append(row.condition)
    out_rows = []
    for key in order:
        values, conditions = by_key[key]
        if any(c.is_true for c in conditions):
            merged = TRUE
        else:
            merged = disjoin(conditions)
        out_rows.append(CTRow(values, merged))
    return table.with_rows(out_rows)


def difference(left, right):
    """R − S on distinct inputs (Fig. 1's last rule).

    For each distinct left row r with condition φ: if r also appears in
    distinct(S) with condition π, the result row carries φ ∧ ¬π; otherwise
    it carries φ unchanged.  ¬π of a conjunction is a DNF disjunction, so
    result conditions may be disjunctive.
    """
    if len(left.schema) != len(right.schema):
        raise SchemaError("difference arity mismatch")
    left_d = distinct(left)
    right_d = distinct(right)
    right_index = {row.value_key(): row.condition for row in right_d.rows}
    out_rows = []
    for row in left_d.rows:
        other = right_index.get(row.value_key())
        if other is None:
            out_rows.append(row)
            continue
        negated = other.negate()
        combined = conjoin(row.condition, negated)
        if not combined.is_false:
            out_rows.append(CTRow(row.values, combined))
    return left_d.with_rows(out_rows)


def rename(table, mapping):
    """ρ: rename columns per ``mapping`` (old name -> new name)."""
    return CTable(table.schema.rename(mapping), list(table.rows), name=table.name)


def prefix(table, alias):
    """Qualify every column as ``alias.column`` (used by scans)."""
    return CTable(table.schema.prefixed(alias), list(table.rows), name=alias)


def order_by(table, column, descending=False, key=None):
    """Sort rows by a deterministic column.

    Cells holding symbolic expressions cannot be ordered without sampling;
    they raise.  ``key`` optionally post-processes cell values.
    """
    idx = table.schema.index_of(column)

    def sort_key(row):
        value = row.values[idx]
        if isinstance(value, Expression):
            raise PIPError(
                "cannot ORDER BY symbolic column %r; aggregate first"
                % (table.schema.names[idx],)
            )
        return key(value) if key else value

    rows = sorted(table.rows, key=sort_key, reverse=descending)
    return table.with_rows(rows)


def partition(table, group_columns):
    """Group rows by deterministic column values (for GROUP BY).

    Returns ``[(key_tuple, sub_table), …]`` in first-seen key order.
    Grouping on a symbolic cell raises: the paper considers grouping by
    uncertain columns "of doubtful value" and PIP restricts grouping to
    nonprobabilistic columns.
    """
    indices = [table.schema.index_of(c) for c in group_columns]
    order = []
    groups = {}
    for row in table.rows:
        key = []
        for idx in indices:
            value = row.values[idx]
            if isinstance(value, Expression):
                raise PIPError(
                    "GROUP BY on uncertain column %r is not supported"
                    % (table.schema.names[idx],)
                )
            key.append(value)
        key = tuple(key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    return [(key, table.with_rows(groups[key])) for key in order]


def limit(table, count, offset=0):
    """LIMIT/OFFSET over the current row order."""
    return table.with_rows(table.rows[offset : offset + count])
