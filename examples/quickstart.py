"""Quickstart: the paper's running example (Examples 1.1 / 2.1 / 3.1).

A database of customer orders with uncertain prices and per-destination
uncertain shipping durations.  The query asks for the expected loss due to
late deliveries to customers named Joe (the product is free if not
delivered within seven days).

Run:  python examples/quickstart.py
"""

import math

from repro import PIPDatabase
from repro.symbolic import col

db = PIPDatabase(seed=1)

# -- deterministic base data ------------------------------------------------
db.sql("CREATE TABLE customers (cust str, shipto str, base_price float)")
db.sql("INSERT INTO customers VALUES ('Joe', 'NY', 100.0), ('Bob', 'LA', 250.0)")
db.sql("CREATE TABLE routes (dest str, ship_rate float)")
db.sql("INSERT INTO routes VALUES ('NY', 0.2), ('LA', 0.5)")

# -- attach uncertainty (the c-tables of Example 1.1) -------------------------
# Prices fluctuate lognormally around the quote; durations are exponential.
orders = db.sql(
    """
    SELECT cust, shipto,
           base_price * create_variable('lognormal', 0, 0.25) AS price
    FROM customers
    """
)
db.register("orders", orders)
print("Order c-table (prices are symbolic equations):")
print(orders.pretty())

shipping = db.sql(
    "SELECT dest, create_variable('exponential', ship_rate) AS duration FROM routes"
)
db.register("shipping", shipping)
print("\nShipping c-table:")
print(shipping.pretty())

# -- the paper's query ---------------------------------------------------------
# select expected_sum(O.Price) from Order O, Shipping S
#  where O.ShipTo = S.Dest and O.Cust = 'Joe' and S.Duration >= 7
THE_QUERY = """
    SELECT expected_sum(price)
    FROM (SELECT o.price AS price
          FROM orders o JOIN shipping s ON o.shipto = s.dest
          WHERE o.cust = :cust AND s.duration >= :late) q
"""

# EXPLAIN first: the logical plan, with each operator classified as
# deterministic, condition-rewriting, or probability-removing.
print("\nEXPLAIN:")
print(db.sql(THE_QUERY, explain=True))

late_joe = db.sql(
    """
    SELECT o.price AS price
    FROM orders o JOIN shipping s ON o.shipto = s.dest
    WHERE o.cust = 'Joe' AND s.duration >= 7
    """
)
print("\nResult c-table after the relational part (Example 3.1):")
print(late_joe.pretty())
db.register("late_joe", late_joe)

answer = db.sql("SELECT expected_sum(price) FROM late_joe")
estimate = answer.scalar()

# Closed form: E[price] * P[duration >= 7] (price and duration independent).
truth = 100.0 * math.exp(0.25**2 / 2.0) * math.exp(-0.2 * 7.0)
print("\nexpected_sum(price) = %.4f   (closed form: %.4f)" % (estimate, truth))
print("estimator: %r" % (answer.estimate(),))

# -- prepared statements: the monitoring fast path ------------------------------
# Parse + plan once; re-bind per tick.  Warm plans + the warm sample bank
# make repeated parameterized queries the amortized fast path.
watch_late_orders = db.prepare(THE_QUERY)
for cust in ("Joe", "Bob", "Joe"):
    tick = watch_late_orders.run(cust=cust, late=7)
    print("expected late-loss for %-3s = %8.4f" % (cust, tick.scalar()))

# -- row confidences ------------------------------------------------------------
confs = db.sql(
    """
    SELECT cust, conf()
    FROM (SELECT o.cust AS cust, o.price AS price
          FROM orders o JOIN shipping s ON o.shipto = s.dest
          WHERE s.duration >= 7) t
    """
)
print("\nPer-customer probability of a late delivery (exact, via CDF):")
print(confs.pretty())

# -- the same query through the fluent API ----------------------------------------
# The builder lowers into the same logical-plan IR as the SQL front end.
result = (
    db.query("orders", alias="o")
    .join(db.query("shipping", alias="s"), on=[col("o.shipto").eq_(col("s.dest"))])
    .where(col("o.cust").eq_("Joe"), col("s.duration") >= 7)
    .select(("price", col("o.price")))
    .expected_sum("price")
)
print("\nFluent API expected_sum: %.4f (method: %s)" % (result.value, result.method))
