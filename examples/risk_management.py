"""Risk management: the paper's motivating application (Section I).

A company models next-year revenue per customer (Poisson purchase growth)
and delivery performance (Normal delivery times).  The risk query asks for
the expected profit lost to dissatisfied customers — those whose delivery
takes longer than their satisfaction threshold.  This is the paper's Q3
shape: a selective join over two independent stochastic models.

Shows: conditions created by queries, pre-materialised views, the
independence optimisation (profit ⊥ delivery → exact factorisation), and
histogram output for visualisation.

Run:  python examples/risk_management.py
"""

import numpy as np

from repro import PIPDatabase
from repro.core.operators import expected_sum, expected_count
from repro.ctables.table import CTable
from repro.sampling.histogram import expression_histogram
from repro.sampling.options import SamplingOptions
from repro.symbolic import conjunction_of, var

rng = np.random.default_rng(3)
db = PIPDatabase(seed=3, options=SamplingOptions(n_samples=1000))

# -- the statistical model, as a c-table -------------------------------------
# One row per customer: profit = avg_order_value * Poisson(growth);
# dissatisfied iff Normal(delivery_mu, 3.0) > threshold.
N_CUSTOMERS = 40
customers = CTable(
    [("custkey", "int"), ("profit", "any"), ("threshold", "float")],
    name="risk_model",
)
truth = 0.0
for custkey in range(1, N_CUSTOMERS + 1):
    avg_order = float(rng.uniform(200.0, 2000.0))
    growth = float(rng.uniform(0.5, 3.0))
    delivery_mu = float(rng.uniform(8.0, 20.0))

    profit_var = db.create_variable("poisson", (growth,))
    delivery_var = db.create_variable("normal", (delivery_mu, 3.0))
    threshold = delivery_mu + 3.0 * 1.2816  # 90th percentile -> P ~ 0.10

    dissatisfied = conjunction_of(var(delivery_var) > threshold)
    customers.add_row(
        (custkey, var(profit_var) * avg_order, threshold), dissatisfied
    )
    truth += avg_order * growth * 0.10

# -- the risk queries ------------------------------------------------------------
loss = expected_sum(customers, "profit", engine=db.engine, options=db.options)
count = expected_count(customers, engine=db.engine, options=db.options)
print("Expected profit lost to dissatisfied customers: %.2f" % loss.value)
print("  closed form                                 : %.2f" % truth)
print("Expected number of dissatisfied customers     : %.2f (truth %.2f)" % (
    count.value, 0.10 * N_CUSTOMERS))
print("Aggregate method: %s, exact=%s" % (loss.method, loss.exact))

# -- drill into one customer: conditional profit histogram -------------------------
row = customers.rows[0]
profit_expr = row.values[1]
histogram = expression_histogram(
    profit_expr, row.condition, n=5000, engine=db.engine, bins=12
)
print("\nConditional profit distribution for customer 1 (given dissatisfied):")
for lo, hi, count_, density in histogram.rows():
    bar = "#" * int(density * 120)
    print("  [%8.1f, %8.1f) %5d %s" % (lo, hi, count_, bar))

# -- materialised views: reuse without re-running the model ------------------------
db.register("risk_model", customers)
view = (
    db.query("risk_model")
    .where_fn(lambda r: r["custkey"] <= 10)
    .materialize("top10_risk")
)
top10 = expected_sum(db.table("top10_risk"), "profit", engine=db.engine)
print("\nMaterialised top-10 view expected loss: %.2f" % top10.value)
print("(The symbolic view is lossless: no bias from materialisation.)")
