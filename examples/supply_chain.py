"""Supply-chain shortfall analysis (the paper's Q5 shape).

Each supplier's production capacity is Exponential while demand follows a
Poisson model; the analyst asks for the expected shortfall in the worlds
where demand exceeds supply.  Comparing two random variables defeats the
CDF-window trick, so PIP falls back to rejection sampling — and, when a
constraint becomes truly hopeless, escalates to Metropolis.

Also demonstrates conditional moments (variance/skewness of the
shortfall).

Run:  python examples/supply_chain.py
"""

from repro import PIPDatabase
from repro.core.operators import expectation_column
from repro.ctables.table import CTable
from repro.sampling.moments import conditional_moments
from repro.sampling.options import SamplingOptions
from repro.symbolic import conjunction_of, var
from repro.workloads.queries import Q5

db = PIPDatabase(seed=9, options=SamplingOptions(n_samples=2000))

SUPPLIERS = [
    ("Acme Corp", 3.0, 0.02),      # demand ~ Poisson(3), supply ~ Exp(0.02)
    ("Bolt Ltd", 5.0, 0.05),
    ("Cog GmbH", 2.0, 0.10),
    ("Dyn Inc", 8.0, 0.01),
]

table = CTable([("supplier", "str"), ("shortfall", "any")], name="supply")
conditions = []
for name, demand_rate, supply_rate in SUPPLIERS:
    demand = db.create_variable("poisson", (demand_rate,))
    supply = db.create_variable("exponential", (supply_rate,))
    condition = conjunction_of(var(demand) > var(supply))
    table.add_row((name, var(demand) - var(supply)), condition)
    conditions.append(condition)

# Per-supplier conditional expectation + probability of shortfall.
result = expectation_column(
    table, "shortfall", engine=db.engine, options=db.options,
    column_name="e_shortfall", with_confidence=True,
)
print("Per-supplier shortfall analysis (rejection sampling):")
print(result.pretty())

# Semi-analytic cross-check via the Q5 machinery.
rows = [(i + 1, d, s) for i, (_n, d, s) in enumerate(SUPPLIERS)]
total_truth, per_truth = Q5.truth(rows)
print("Closed-form E[shortfall * indicator] per supplier:")
for (name, _d, _s), (key, value) in zip(SUPPLIERS, sorted(per_truth.items())):
    print("  %-10s %.4f" % (name, value))

# Conditional moments for the riskiest supplier.
riskiest = table.rows[3]
moments = conditional_moments(
    riskiest.values[1], riskiest.condition, n=4000, engine=db.engine
)
print("\nConditional shortfall moments for %s:" % riskiest.values[0])
print("  mean     %8.3f" % moments.mean)
print("  stddev   %8.3f" % moments.stddev)
print("  skewness %8.3f" % moments.skewness)

# A hopeless constraint: Metropolis escalation in action.
x = db.create_variable("normal", (0.0, 1.0))
y = db.create_variable("normal", (0.0, 1.0))
hopeless = conjunction_of(var(x) > var(y) + 6.0)
outcome = db.engine.expectation(
    var(x) - var(y),
    hopeless,
    options=SamplingOptions(n_samples=500, metropolis_start_tries=2_000_000),
)
print("\nE[X - Y | X > Y + 6] = %.3f via %s" % (
    outcome.mean, sorted(outcome.methods.values())))
