"""Extending PIP with a user-defined distribution class (Section V-B).

"PIP requires that all distribution classes define a Generate function.
All other functions are optional, but can be used to improve PIP's
performance if provided."

This example registers a *shifted Rayleigh* distribution twice:

1. generate-only — PIP can still answer every query, by rejection;
2. with CDF + inverse CDF — the same query now takes the exact-CDF and
   CDF-window paths, with zero rejections.

Run:  python examples/custom_distribution.py
"""

import math

import numpy as np

from repro import PIPDatabase, register_distribution
from repro.distributions import Distribution
from repro.sampling.options import SamplingOptions
from repro.symbolic import conjunction_of, var
from repro.util.intervals import Interval


class RayleighGenerateOnly(Distribution):
    """Rayleigh(scale) with only the mandatory Generate function."""

    name = "rayleigh_basic"

    def validate_params(self, params):
        (scale,) = params
        scale = float(scale)
        if scale <= 0:
            raise ValueError("scale must be positive")
        return (scale,)

    def generate_batch(self, params, rng, size):
        (scale,) = params
        return rng.rayleigh(scale, size)


class RayleighFull(RayleighGenerateOnly):
    """Same distribution, now with the optional accelerators."""

    name = "rayleigh"

    def pdf(self, params, x):
        (scale,) = params
        x = np.asarray(x, dtype=float)
        return np.where(
            x >= 0, x / scale**2 * np.exp(-(x**2) / (2 * scale**2)), 0.0
        )

    def cdf(self, params, x):
        (scale,) = params
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-(x**2) / (2 * scale**2)), 0.0)

    def inverse_cdf(self, params, u):
        (scale,) = params
        u = np.asarray(u, dtype=float)
        return scale * np.sqrt(-2.0 * np.log1p(-u))

    def mean(self, params):
        (scale,) = params
        return scale * math.sqrt(math.pi / 2.0)

    def variance(self, params):
        (scale,) = params
        return (2.0 - math.pi / 2.0) * scale**2

    def support(self, params):
        return Interval.at_least(0.0)


register_distribution(RayleighGenerateOnly)
register_distribution(RayleighFull)

db = PIPDatabase(seed=4, options=SamplingOptions(n_samples=4000))

SCALE = 2.0
CUT = 5.0  # ask about the tail beyond 5
tail_probability = math.exp(-(CUT**2) / (2 * SCALE**2))
print("True tail probability P[X > %.1f] = %.5f" % (CUT, tail_probability))

for dist_name in ("rayleigh_basic", "rayleigh"):
    wind_speed = db.create_variable(dist_name, (SCALE,))
    condition = conjunction_of(var(wind_speed) > CUT)
    result = db.engine.expectation(
        var(wind_speed), condition, want_probability=True, options=db.options
    )
    print(
        "\n%-15s E[X | X > %.1f] = %.4f, P = %.5f (exact_p=%s)"
        % (dist_name, CUT, result.mean, result.probability, result.exact_probability)
    )
    print("  sampling methods: %s" % sorted(set(result.methods.values())))

print(
    "\nWith CDF/InverseCDF registered, the engine integrates the tail "
    "probability exactly\nand samples inside the constraint window with "
    "zero rejections — the Section V-B promise."
)
