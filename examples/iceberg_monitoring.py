"""Iceberg monitoring as a live service, instrumented end to end.

The paper's Section VI field study — virtual ships in the North
Atlantic asking which icebergs are probably nearby — reframed as the
monitoring loop it would be in production, with the observability
layer (docs/observability.md) watching every tick:

* the **metrics registry** (`db.metrics()`) tracks statements, sampling
  effort and the sample-bank hit rate across ticks — tick 2 onward is
  served from the bank without drawing a sample;
* the **slow-query log** (`repro.slowquery`) flags the cold-start
  statements that exceed the threshold;
* **EXPLAIN ANALYZE** shows where one ship's statement actually spends
  its time, operator by operator.

The exact threat numbers still cross-check against the closed form,
as in the paper: the box probability of two independent Normals is
four CDF evaluations, so `expected_sum(danger)` under the box
predicate is exact — no samples drawn.  The drift statement's value
expression, by contrast, keeps a position variable inside a
two-variable condition, which forces Monte Carlo — that is the
statement the bank accelerates.

Run:  PYTHONPATH=src python examples/iceberg_monitoring.py
"""

import logging

from repro.core.database import PIPDatabase
from repro.obs import Telemetry
from repro.workloads.iceberg import danger_level, exact_ship_threat, generate_iceberg

# Surface the library's slow-query log on the console: everything the
# repo logs lives under the "repro" logger hierarchy.
handler = logging.StreamHandler()
handler.setFormatter(logging.Formatter("  [%(name)s] %(message)s"))
logging.getLogger("repro.slowquery").addHandler(handler)

RADIUS = 1.0  # degrees: the proximity box around each ship
TICKS = 3

data = generate_iceberg(n_icebergs=40, n_ships=12, seed=11)
print(
    "Generated %d iceberg sightings (4 years) and %d virtual ships"
    % (len(data.sightings), len(data.ships))
)

# Metrics on (the default), slow-query log armed at 100 ms: cold-start
# sampling statements trip it, warm bank-served ticks do not.
db = PIPDatabase(seed=0, telemetry=Telemetry(slow_query_seconds=0.1))

db.sql("CREATE TABLE sightings (iceberg_id int, lat0 float, lon0 float,"
       " days float, danger float)")
statement = db.prepare(
    "INSERT INTO sightings VALUES (:i, :lat, :lon, :days, :danger)"
)
for iid, lat, lon, days in data.sightings:
    statement.run(i=iid, lat=lat, lon=lon, days=days,
                  danger=danger_level(days))

# Positional drift grows with staleness: sigma = 0.05 + 0.002 * days
# (workloads.iceberg.position_std, inlined so the c-table is built in SQL).
db.register("icebergs", db.sql(
    "SELECT iceberg_id, danger,"
    " create_variable('normal', lat0, 0.05 + 0.002 * days) AS lat,"
    " create_variable('normal', lon0, 0.05 + 0.002 * days) AS lon"
    " FROM sightings"
))

# The two monitoring statements, prepared once and re-bound per ship.
BOX = ("lat > :lat_lo AND lat < :lat_hi"
       " AND lon > :lon_lo AND lon < :lon_hi")
threat_stmt = db.prepare(
    "SELECT expected_sum(danger) AS threat FROM icebergs WHERE " + BOX
)
drift_stmt = db.prepare(
    "SELECT expected_sum(danger * (lat - :lat_mid)) AS drift"
    " FROM icebergs WHERE " + BOX
)


def box(ship):
    _sid, lat, lon = ship
    return {
        "lat_lo": lat - RADIUS, "lat_hi": lat + RADIUS,
        "lon_lo": lon - RADIUS, "lon_hi": lon + RADIUS,
        "lat_mid": lat,
    }


# Where does one ship's statement spend its time?
print("\nEXPLAIN ANALYZE for ship %d's drift statement:" % data.ships[0][0])
print(db.sql(drift_stmt.text, box(data.ships[0]), analyze=True))

print("\nMonitoring loop (%d ticks x %d ships):" % (TICKS, len(data.ships)))
threats = {}
before = db.metrics()
for tick in range(1, TICKS + 1):
    for ship in data.ships:
        params = box(ship)
        threats[ship[0]] = threat_stmt.run(**params).scalar()
        drift_stmt.run(**params)
    after = db.metrics()
    print(
        "  tick %d: %3d statements  %7d samples drawn  "
        "bank hit rate %4.0f%%  slow queries %d" % (
            tick,
            after["pip_queries_total"] - before["pip_queries_total"],
            after["pip_bank_samples_drawn"] - before["pip_bank_samples_drawn"],
            100.0 * after["pip_bank_hit_rate"],
            after["pip_slow_queries_total"] - before["pip_slow_queries_total"],
        )
    )
    before = after

# The exact statements really are exact: cross-check the closed form.
worst = max(
    abs(threats[ship[0]]
        - exact_ship_threat(data, ship, radius=RADIUS, min_conf=0.0))
    for ship in data.ships
)
print("\nPIP max absolute deviation from closed form: %.3g (exact)" % worst)

print("\nMost threatened ships:")
for ship_id, threat in sorted(threats.items(), key=lambda kv: -kv[1])[:5]:
    _sid, lat, lon = next(s for s in data.ships if s[0] == ship_id)
    print("  ship %2d at (%5.1f, %6.1f): expected threat %.4f"
          % (ship_id, lat, lon, threat))

print("\nScrape-ready metrics (excerpt of db.metrics(text=True)):")
for line in db.metrics(text=True).splitlines():
    if line.startswith(("pip_queries_total", "pip_bank_hit_rate",
                        "pip_bank_samples_drawn", "pip_slow_queries_total",
                        "pip_query_seconds_count")):
        print("  " + line)

db.close()
