"""Iceberg monitoring: the paper's Section VI field study, end to end.

Virtual ships in the North Atlantic evaluate their proximity to icebergs
whose positions are only known up to a (staleness-dependent) Normal drift
around the last sighting.  PIP computes each box-proximity probability
*exactly* with four CDF evaluations; the Sample-First baseline has to
estimate the same probabilities from its committed sample worlds and
carries substantial error.

Run:  python examples/iceberg_monitoring.py
"""

from repro.workloads.iceberg import (
    error_distribution,
    exact_ship_threat,
    generate_iceberg,
    run_pip,
    run_samplefirst,
)

data = generate_iceberg(n_icebergs=60, n_ships=20, seed=11)
print(
    "Generated %d iceberg sightings (4 years) and %d virtual ships"
    % (len(data.sightings), len(data.ships))
)

# Ground truth straight from the closed-form model.
truths = {ship[0]: exact_ship_threat(data, ship) for ship in data.ships}

# PIP: exact CDF integration through the conf() operator.
pip_threats, pip_time = run_pip(data)
worst_pip = max(
    abs(pip_threats[k] - truths[k]) for k in truths
)
print("\nPIP evaluated %d ship-iceberg pairs in %.2fs" % (
    len(data.sightings) * len(data.ships), pip_time))
print("PIP max absolute deviation from closed form: %.3g (exact)" % worst_pip)

# Sample-First: 1000 committed worlds.
sf_threats, sf_time = run_samplefirst(data, n_worlds=1000)
errors = error_distribution(sf_threats, truths)
print("\nSample-First (1000 worlds) took %.2fs" % sf_time)
print("Sample-First relative-error distribution over threatened ships:")
for label, quantile in (("median", 0.5), ("p90", 0.9), ("max", 1.0)):
    index = min(len(errors) - 1, int(quantile * len(errors)))
    print("  %-6s %6.2f%%" % (label, errors[index] * 100.0))

print("\nMost threatened ships (PIP exact threat):")
ranked = sorted(pip_threats.items(), key=lambda kv: -kv[1])[:5]
for ship_id, threat in ranked:
    _sid, lat, lon = next(s for s in data.ships if s[0] == ship_id)
    print(
        "  ship %2d at (%5.1f, %6.1f): threat %.4f  (SF estimate %.4f)"
        % (ship_id, lat, lon, threat, sf_threats[ship_id])
    )
