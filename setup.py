"""Legacy setup shim.

The offline test environment lacks the ``wheel`` package, which PEP 517
editable installs require; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy"],
    python_requires=">=3.9",
)
